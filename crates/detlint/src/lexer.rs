//! A minimal Rust lexer with `line:col` spans.
//!
//! detlint deliberately does not depend on `syn`: the checks it runs
//! (DL001–DL006, see [`crate::diag`]) are token-shape invariants, not
//! type-system facts, and a dependency-free lexer keeps the lint gate
//! hermetic — it builds offline, instantly, and can never be broken by
//! a proc-macro ecosystem bump. The lexer understands everything that
//! can hide a token from a naive scan: nested block comments, doc
//! comments, string/char/byte/raw-string literals, raw identifiers,
//! lifetimes vs. char literals, and numeric literals (including float
//! detection for DL006).
//!
//! Comments are lexed *out of band* into [`Lexed::comments`] — the
//! analyzer needs them for `// SAFETY:` adjacency (DL002) and
//! `// detlint: allow(...)` suppression directives.

/// What a token is. Only the distinctions the analyzer needs are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident(String),
    /// A lifetime such as `'a` (name stored without the quote).
    Lifetime(String),
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal. `float` is true when the literal is a floating
    /// point number (has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix).
    Num { float: bool },
    /// A single punctuation character. Multi-character operators are
    /// recognised by the analyzer via byte-offset adjacency.
    Punct(char),
}

/// One token with its position (1-based line and column, byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
    pub off: usize,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(t) if t == s)
    }
}

/// A comment with its position. `text` excludes the comment markers'
/// trailing newline but keeps the leading `//`, `///`, `/*`, … so the
/// analyzer can distinguish doc comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Line on which the comment ends (equal to `line` for `//`).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lex a whole source file. Unterminated literals or comments never
/// panic: the lexer consumes to end of input and returns what it has,
/// which is the right behaviour for a linter that must survive
/// arbitrary (even syntactically broken) input.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters for ASCII-heavy source (exact for the Rust syntax
    /// itself, approximate inside non-ASCII string contents — which
    /// never carry diagnostics).
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'r' | b'b' | b'c' => {
                    if !self.literal_prefix() {
                        self.ident();
                    }
                }
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    let (line, col, off) = (self.line, self.col, self.pos);
                    // Non-ASCII bytes outside literals can only start
                    // identifiers (handled above for XID starts we
                    // care about) — emit the lead byte as punct and
                    // skip the rest of the character.
                    self.out.tokens.push(Tok {
                        kind: TokKind::Punct(b as char),
                        line,
                        col,
                        off,
                    });
                    self.bump();
                    while matches!(self.peek(), Some(c) if c & 0xC0 == 0x80) {
                        self.bump();
                    }
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (line, col, start) = (self.line, self.col, self.pos);
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            col,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let (line, col, start) = (self.line, self.col, self.pos);
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            col,
            end_line: self.line,
        });
    }

    /// Ordinary (escaped, non-raw) string body after the opening quote
    /// has been identified; `quote` is `"` or `'`.
    fn escaped_body(&mut self, quote: u8) {
        self.bump(); // opening quote
        while let Some(b) = self.peek() {
            match b {
                b'\\' => self.bump_n(2),
                _ if b == quote => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    fn string(&mut self) {
        let (line, col, off) = (self.line, self.col, self.pos);
        self.escaped_body(b'"');
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            line,
            col,
            off,
        });
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self) {
        let (line, col, off) = (self.line, self.col, self.pos);
        match self.peek_at(1) {
            // `'\n'`, `'\''` … always a char literal.
            Some(b'\\') => {
                self.escaped_body(b'\'');
                self.out.tokens.push(Tok {
                    kind: TokKind::Char,
                    line,
                    col,
                    off,
                });
            }
            Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
                // Scan the identifier-shaped run after the quote; if it
                // is terminated by another `'` this is a char literal
                // (`'a'`), otherwise a lifetime (`'a`).
                let mut end = self.pos + 2;
                while matches!(self.src.get(end), Some(&c) if is_ident_continue(c)) {
                    end += 1;
                }
                if self.src.get(end) == Some(&b'\'') {
                    self.bump(); // `'`
                    while self.pos < end + 1 {
                        self.bump();
                    }
                    self.out.tokens.push(Tok {
                        kind: TokKind::Char,
                        line,
                        col,
                        off,
                    });
                } else {
                    self.bump(); // `'`
                    let start = self.pos;
                    while self.pos < end {
                        self.bump();
                    }
                    let name = String::from_utf8_lossy(&self.src[start..end]).into_owned();
                    self.out.tokens.push(Tok {
                        kind: TokKind::Lifetime(name),
                        line,
                        col,
                        off,
                    });
                }
            }
            // `'('`-style single-char literal, or a stray quote.
            Some(_) if self.peek_at(2) == Some(b'\'') => {
                self.bump_n(3);
                self.out.tokens.push(Tok {
                    kind: TokKind::Char,
                    line,
                    col,
                    off,
                });
            }
            _ => {
                self.bump();
                self.out.tokens.push(Tok {
                    kind: TokKind::Punct('\''),
                    line,
                    col,
                    off,
                });
            }
        }
    }

    /// Try to lex a literal with an `r`/`b`/`c`-family prefix (raw
    /// strings, byte strings/chars, C strings, raw identifiers).
    /// Returns false when the current position is an ordinary
    /// identifier starting with one of those letters.
    fn literal_prefix(&mut self) -> bool {
        let (line, col, off) = (self.line, self.col, self.pos);
        // Longest prefix first: br / cr / b / c / r.
        let rest = &self.src[self.pos..];
        let (prefix_len, raw) = if rest.starts_with(b"br") || rest.starts_with(b"cr") {
            (2, true)
        } else if rest.starts_with(b"r") {
            (1, true)
        } else {
            // b"…" | b'…' | c"…"
            (1, false)
        };
        let after = self.pos + prefix_len;
        if raw {
            // r#ident (raw identifier) — only plain `r`.
            if prefix_len == 1 && self.src.get(after) == Some(&b'#') {
                if let Some(&b2) = self.src.get(after + 1) {
                    if is_ident_start(b2) {
                        self.bump_n(2); // r#
                        let start = self.pos;
                        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                            self.bump();
                        }
                        let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        self.out.tokens.push(Tok {
                            kind: TokKind::Ident(name),
                            line,
                            col,
                            off,
                        });
                        return true;
                    }
                }
            }
            // raw string: prefix, zero+ `#`, then `"`.
            let mut hashes = 0;
            while self.src.get(after + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if self.src.get(after + hashes) == Some(&b'"') {
                self.bump_n(prefix_len + hashes + 1);
                // Scan until `"` followed by `hashes` `#`s.
                'scan: while let Some(b) = self.peek() {
                    if b == b'"' {
                        for h in 0..hashes {
                            if self.peek_at(1 + h) != Some(b'#') {
                                self.bump();
                                continue 'scan;
                            }
                        }
                        self.bump_n(1 + hashes);
                        break;
                    }
                    self.bump();
                }
                self.out.tokens.push(Tok {
                    kind: TokKind::Str,
                    line,
                    col,
                    off,
                });
                return true;
            }
            return false;
        }
        // Non-raw prefixed literal: b"…" , b'…' , c"…".
        match self.src.get(after) {
            Some(&b'"') => {
                self.bump_n(prefix_len);
                self.string();
                // Fix up the span to include the prefix.
                if let Some(t) = self.out.tokens.last_mut() {
                    t.line = line;
                    t.col = col;
                    t.off = off;
                }
                true
            }
            Some(&b'\'') if rest.starts_with(b"b") => {
                self.bump_n(prefix_len);
                self.escaped_body(b'\'');
                self.out.tokens.push(Tok {
                    kind: TokKind::Char,
                    line,
                    col,
                    off,
                });
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        let (line, col, off) = (self.line, self.col, self.pos);
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_ident_continue(b) || b & 0x80 != 0 {
                self.bump();
            } else {
                break;
            }
        }
        let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.tokens.push(Tok {
            kind: TokKind::Ident(name),
            line,
            col,
            off,
        });
    }

    fn number(&mut self) {
        let (line, col, off) = (self.line, self.col, self.pos);
        let start = self.pos;
        let hex_like = self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
            );
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.bump(),
                b'.' => {
                    // Only part of the number when followed by a digit
                    // (`1.5`) — never consume `..` range syntax or a
                    // method call on a literal (`1.max(2)`).
                    if !float
                        && !hex_like
                        && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit())
                    {
                        float = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !hex_like => {
                    // Exponent when followed by digit or sign+digit.
                    let next = self.peek_at(1);
                    let next2 = self.peek_at(2);
                    let exp = matches!(next, Some(c) if c.is_ascii_digit())
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(next2, Some(c) if c.is_ascii_digit()));
                    if exp {
                        float = true;
                        self.bump();
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                _ if b.is_ascii_alphanumeric() => self.bump(),
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if !hex_like && (text.ends_with(b"f32") || text.ends_with(b"f64")) {
            float = true;
        }
        self.out.tokens.push(Tok {
            kind: TokKind::Num { float },
            line,
            col,
            off,
        });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b & 0x80 != 0
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn basic_tokens_and_spans() {
        let l = lex("fn main() {}\nlet x = 1;");
        assert!(l.tokens[0].is_ident("fn"));
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        let let_tok = l.tokens.iter().find(|t| t.is_ident("let")).unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 1));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// SAFETY: fine\nunsafe {}\n/* block\n   more */ x");
        assert!(l.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("SAFETY")));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("SAFETY"));
        assert_eq!(l.comments[1].end_line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ ident");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ ident"), vec!["ident"]);
    }

    #[test]
    fn strings_hide_tokens() {
        assert_eq!(
            idents(r#"let s = "for x in map.iter()";"#),
            vec!["let", "s"]
        );
        assert_eq!(
            idents(r##"let s = r#"unsafe { "quoted" }"#;"##),
            vec!["let", "s"]
        );
        assert_eq!(idents(r#"let s = b"HashMap";"#), vec!["let", "s"]);
    }

    #[test]
    fn string_escapes() {
        let l = lex(r#""a\"b" x"#);
        assert_eq!(l.tokens.len(), 2);
        assert!(l.tokens[1].is_ident("x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'b'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Lifetime(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn numbers_and_floats() {
        let l =
            lex("let a = 1; let b = 1.5; let c = 0.0f32; let d = 1e-3; let e = 0xE; let r = 0..2;");
        let floats: Vec<bool> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![false, true, true, true, false, false, false]);
    }

    #[test]
    fn range_dots_not_swallowed() {
        let l = lex("0..n");
        assert!(l.tokens.iter().any(|t| t.is_punct('.')));
        assert!(l.tokens.iter().any(|t| t.is_ident("n")));
    }

    #[test]
    fn adjacency_offsets_for_compound_ops() {
        let l = lex("x += 1;");
        let plus = l.tokens.iter().find(|t| t.is_punct('+')).unwrap();
        let eq = l.tokens.iter().find(|t| t.is_punct('=')).unwrap();
        assert_eq!(plus.off + 1, eq.off);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* open", "r#\"open", "'", "b'", "let x = "] {
            let _ = lex(src);
        }
    }

    #[test]
    fn shebang_and_attrs() {
        let l = lex("#![allow(dead_code)]\n#[cfg(test)]\nmod t {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("cfg")));
        assert!(l.tokens.iter().any(|t| t.is_ident("test")));
    }
}
