//! Diagnostic codes and findings for the determinism analyzer.
//!
//! Mirrors the `cylint` UX (`cypher::diag`): every finding carries a
//! stable machine-readable code (`DL001`–`DL006`), a repo-relative
//! path, and a 1-based `line:col` span. The numeric ids never change
//! meaning; new checks append new codes. `DL000` is reserved for
//! malformed suppression directives — it exists so that "every
//! suppression carries a reason" is itself machine-enforced and can
//! never be suppressed.

use std::fmt;

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// DL000: a `detlint: allow(...)` directive without a reason, with
    /// an unknown code, or an allowlist entry missing a reason.
    BadAllowDirective,
    /// DL001: iteration over `std::HashMap`/`HashSet` (or the `Fx`
    /// aliases) in non-test code without an order-insensitive sink or
    /// a justification — hash iteration order is not a contract.
    HashOrderIteration,
    /// DL002: an `unsafe` block or `unsafe fn` without an adjacent
    /// `// SAFETY:` comment (or `# Safety` doc section for fns).
    UnsafeWithoutContract,
    /// DL003: wall-clock reads (`Instant::now`, `SystemTime::now`)
    /// outside `crates/bench` — time must never influence results.
    WallClock,
    /// DL004: unseeded randomness (`thread_rng`, `from_entropy`,
    /// argless `rng()`) anywhere in the workspace.
    UnseededRandomness,
    /// DL005: a `#[target_feature]` function with a call site outside
    /// an `is_x86_feature_detected!`-gated dispatcher in its module.
    UngatedTargetFeature,
    /// DL006: `f32`/`f64` `+=` accumulation inside a `thread::scope` /
    /// `spawn` region — float addition is not associative, so the
    /// schedule becomes observable.
    ParallelFloatAccumulation,
}

impl Code {
    /// The six lintable codes, in numeric order (DL000 is the
    /// meta-code for malformed suppressions and is not listed).
    pub const ALL: [Code; 6] = [
        Code::HashOrderIteration,
        Code::UnsafeWithoutContract,
        Code::WallClock,
        Code::UnseededRandomness,
        Code::UngatedTargetFeature,
        Code::ParallelFloatAccumulation,
    ];

    /// The stable `DL00x` identifier.
    pub fn id(self) -> &'static str {
        match self {
            Code::BadAllowDirective => "DL000",
            Code::HashOrderIteration => "DL001",
            Code::UnsafeWithoutContract => "DL002",
            Code::WallClock => "DL003",
            Code::UnseededRandomness => "DL004",
            Code::UngatedTargetFeature => "DL005",
            Code::ParallelFloatAccumulation => "DL006",
        }
    }

    /// Kebab-case name for reports.
    pub fn slug(self) -> &'static str {
        match self {
            Code::BadAllowDirective => "allow-directive-missing-reason",
            Code::HashOrderIteration => "hash-order-iteration",
            Code::UnsafeWithoutContract => "unsafe-without-safety-comment",
            Code::WallClock => "wall-clock-read",
            Code::UnseededRandomness => "unseeded-randomness",
            Code::UngatedTargetFeature => "ungated-target-feature-call",
            Code::ParallelFloatAccumulation => "parallel-float-accumulation",
        }
    }

    /// Parse a `DL00x` id.
    pub fn parse(s: &str) -> Option<Code> {
        match s {
            "DL001" => Some(Code::HashOrderIteration),
            "DL002" => Some(Code::UnsafeWithoutContract),
            "DL003" => Some(Code::WallClock),
            "DL004" => Some(Code::UnseededRandomness),
            "DL005" => Some(Code::UngatedTargetFeature),
            "DL006" => Some(Code::ParallelFloatAccumulation),
            _ => None,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.slug())
    }
}

/// Why a finding did not count against the exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suppression {
    /// An inline `// detlint: allow(DLxxx) <reason>` directive.
    Inline { reason: String },
    /// An entry in the checked-in allowlist (`detlint.toml`).
    Allowlist { reason: String },
}

impl Suppression {
    /// The written justification.
    pub fn reason(&self) -> &str {
        match self {
            Suppression::Inline { reason } | Suppression::Allowlist { reason } => reason,
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub message: String,
    /// `Some` when the finding is justified and does not fail the run.
    pub suppression: Option<Suppression>,
}

impl Diagnostic {
    /// Whether this finding fails the run.
    pub fn is_active(&self) -> bool {
        self.suppression.is_none()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}:{}: {}",
            self.code.id(),
            self.path,
            self.line,
            self.col,
            self.message
        )?;
        if let Some(s) = &self.suppression {
            let kind = match s {
                Suppression::Inline { .. } => "inline allow",
                Suppression::Allowlist { .. } => "allowlist",
            };
            write!(f, " [suppressed: {kind}: {}]", s.reason())?;
        }
        Ok(())
    }
}

/// Escape a string for inclusion in hand-rendered JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.id()), Some(code));
        }
        assert_eq!(Code::parse("DL000"), None, "DL000 is not suppressible");
        assert_eq!(Code::parse("CY001"), None);
    }

    #[test]
    fn display_format_matches_cylint_shape() {
        let d = Diagnostic {
            code: Code::HashOrderIteration,
            path: "crates/x/src/a.rs".into(),
            line: 12,
            col: 9,
            message: "iteration over HashMap `m`".into(),
            suppression: None,
        };
        assert_eq!(
            d.to_string(),
            "DL001 crates/x/src/a.rs:12:9: iteration over HashMap `m`"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
