//! detlint — workspace determinism & unsafe-invariant analyzer.
//!
//! The reproduction's core contract is that every fast path (pruned,
//! quantized, batched, parallel) is *byte-identical* to its sequential
//! exact twin. That contract is enforced dynamically by proptests and
//! bench identity gates; detlint enforces its preconditions
//! *statically*, before a nondeterminism hazard ever reaches a bench
//! run. Six checks, `DL001`–`DL006` (see [`diag::Code`]), each
//! reported with a stable code and a `file:line:col` span, mirroring
//! the `cylint` CY-code UX.
//!
//! detlint is deliberately dependency-free (its own minimal Rust
//! lexer instead of `syn`), so the gate builds offline and instantly.
//!
//! Suppression is always *written down*: inline
//! `// detlint: allow(DLxxx) <reason>` directives, or entries in the
//! checked-in `detlint.toml` allowlist — both reject empty reasons.

pub mod allowlist;
pub mod analyze;
pub mod diag;
pub mod lexer;
pub mod workspace;

pub use analyze::{analyze, analyze_with, hash_field_names, FileClass};
pub use diag::{Code, Diagnostic, Suppression};

use std::path::Path;

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, sorted by (path, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed.
    pub files: usize,
    /// Allowlist entries that matched no finding (stale).
    pub stale_allowlist: Vec<String>,
    /// Errors reading files or the allowlist (usage errors, exit 2).
    pub errors: Vec<String>,
}

impl Report {
    /// Findings that fail the run.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_active())
    }

    /// Count of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.suppression.is_some())
            .count()
    }

    /// Per-code `(code, active, suppressed)` counts over all findings,
    /// in code order.
    pub fn counts(&self) -> Vec<(Code, usize, usize)> {
        let mut out = Vec::new();
        for code in Code::ALL {
            let active = self
                .diagnostics
                .iter()
                .filter(|d| d.code == code && d.is_active())
                .count();
            let suppressed = self
                .diagnostics
                .iter()
                .filter(|d| d.code == code && !d.is_active())
                .count();
            if active + suppressed > 0 {
                out.push((code, active, suppressed));
            }
        }
        let bad = self
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::BadAllowDirective)
            .count();
        if bad > 0 {
            out.push((Code::BadAllowDirective, bad, 0));
        }
        out
    }

    /// Render the report as JSON (hand-rolled; detlint has no deps).
    pub fn to_json(&self) -> String {
        use diag::json_escape as esc;
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let suppression = match &d.suppression {
                None => "null".to_string(),
                Some(s) => {
                    let kind = match s {
                        Suppression::Inline { .. } => "inline",
                        Suppression::Allowlist { .. } => "allowlist",
                    };
                    format!(
                        "{{\"kind\": \"{kind}\", \"reason\": \"{}\"}}",
                        esc(s.reason())
                    )
                }
            };
            out.push_str(&format!(
                "    {{\"code\": \"{}\", \"slug\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"col\": {}, \"message\": \"{}\", \"suppression\": {}}}{}\n",
                d.code.id(),
                d.code.slug(),
                esc(&d.path),
                d.line,
                d.col,
                esc(&d.message),
                suppression,
                if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"files\": {},\n", self.files));
        out.push_str(&format!(
            "  \"active\": {},\n  \"suppressed\": {},\n",
            self.active().count(),
            self.suppressed_count()
        ));
        out.push_str("  \"stale_allowlist\": [");
        for (i, s) in self.stale_allowlist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", esc(s)));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Lint the workspace rooted at `root`, applying the allowlist at
/// `<root>/detlint.toml` when present.
pub fn run_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    let files = match workspace::workspace_files(root) {
        Ok(f) => f,
        Err(e) => {
            report.errors.push(format!(
                "cannot enumerate workspace at {}: {e}",
                root.display()
            ));
            return report;
        }
    };
    // Two passes: first collect every identifier declared anywhere in
    // the workspace with a hash-ordered type (struct fields cross file
    // boundaries — `source.rs` declares `meta`, `stats.rs` iterates
    // it), then analyze each file with that union as extra context.
    let mut sources: Vec<(usize, String)> = Vec::new();
    let mut field_names = std::collections::BTreeSet::new();
    for (i, class) in files.iter().enumerate() {
        let full = root.join(&class.path);
        match std::fs::read_to_string(&full) {
            Ok(src) => {
                field_names.extend(hash_field_names(&src));
                sources.push((i, src));
            }
            Err(e) => report
                .errors
                .push(format!("cannot read {}: {e}", full.display())),
        }
    }
    for (i, src) in &sources {
        report.files += 1;
        report
            .diagnostics
            .extend(analyze_with(&files[*i], src, &field_names));
    }
    let allow_path = root.join("detlint.toml");
    if allow_path.exists() {
        match std::fs::read_to_string(&allow_path) {
            Ok(text) => match allowlist::parse(&text, "detlint.toml") {
                Ok(entries) => {
                    let stale = allowlist::apply(&entries, &mut report.diagnostics);
                    report.stale_allowlist = stale
                        .into_iter()
                        .map(|i| {
                            let e = &entries[i];
                            format!("{} {} ({})", e.code.id(), e.path, e.reason)
                        })
                        .collect();
                }
                Err(errs) => report.errors.extend(errs),
            },
            Err(e) => report.errors.push(format!("cannot read detlint.toml: {e}")),
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_json() {
        let mut r = Report::default();
        r.diagnostics.push(Diagnostic {
            code: Code::WallClock,
            path: "a.rs".into(),
            line: 1,
            col: 2,
            message: "m \"quoted\"".into(),
            suppression: None,
        });
        r.diagnostics.push(Diagnostic {
            code: Code::WallClock,
            path: "b.rs".into(),
            line: 3,
            col: 4,
            message: "m".into(),
            suppression: Some(Suppression::Allowlist { reason: "r".into() }),
        });
        r.files = 2;
        assert_eq!(r.active().count(), 1);
        assert_eq!(r.suppressed_count(), 1);
        assert_eq!(r.counts(), vec![(Code::WallClock, 1, 1)]);
        let json = r.to_json();
        assert!(json.contains("\"code\": \"DL003\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"suppression\": {\"kind\": \"allowlist\", \"reason\": \"r\"}"));
    }
}
