//! Error taxonomy counters for the paper's §4.6 error analysis.

use kgstore_free::FxHashMap;
use serde::{Deserialize, Serialize};

// evalkit deliberately has no kgstore dependency; a tiny local alias
// keeps the same fast-hash behaviour without the crate edge.
mod kgstore_free {
    pub type FxHashMap<K, V> = std::collections::HashMap<K, V>;
}

/// Pipeline stage where an error originated (the paper's four-step
/// error analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorStage {
    /// §4.6.1 — Cypher generation failed (parse error / spurious MATCH).
    PseudoGraphGeneration,
    /// §4.6.2 — semantic querying missed or over-pruned entities.
    SemanticQuerying,
    /// §4.6.3 — LLM verification introduced a new error.
    Verification,
    /// §4.6.4 — answer generation ignored the graph.
    AnswerGeneration,
}

impl ErrorStage {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorStage::PseudoGraphGeneration => "pseudo-graph generation",
            ErrorStage::SemanticQuerying => "semantic querying",
            ErrorStage::Verification => "verification",
            ErrorStage::AnswerGeneration => "answer generation",
        }
    }
}

/// Counter of errors per stage plus total questions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorTally {
    /// Total questions processed.
    pub total_questions: usize,
    /// Total questions answered incorrectly.
    pub total_errors: usize,
    counts: FxHashMap<ErrorStage, usize>,
}

impl ErrorTally {
    /// Record a processed question; `error_stage` is the stage blamed
    /// for the failure, if the answer was wrong.
    pub fn record(&mut self, error_stage: Option<ErrorStage>) {
        self.total_questions += 1;
        if let Some(stage) = error_stage {
            self.total_errors += 1;
            *self.counts.entry(stage).or_default() += 1;
        }
    }

    /// Raw count for one stage.
    pub fn count(&self, stage: ErrorStage) -> usize {
        self.counts.get(&stage).copied().unwrap_or(0)
    }

    /// Stage errors as a percentage of *total errors* (how the paper
    /// reports verification-introduced errors: 15.2% of total errors).
    pub fn share_of_errors(&self, stage: ErrorStage) -> f64 {
        if self.total_errors == 0 {
            0.0
        } else {
            100.0 * self.count(stage) as f64 / self.total_errors as f64
        }
    }

    /// Stage errors as a percentage of all questions (how the paper
    /// reports the 0.6% Cypher error rate).
    pub fn rate_of_questions(&self, stage: ErrorStage) -> f64 {
        if self.total_questions == 0 {
            0.0
        } else {
            100.0 * self.count(stage) as f64 / self.total_questions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts_and_shares() {
        let mut t = ErrorTally::default();
        t.record(None);
        t.record(Some(ErrorStage::Verification));
        t.record(Some(ErrorStage::SemanticQuerying));
        t.record(Some(ErrorStage::Verification));
        assert_eq!(t.total_questions, 4);
        assert_eq!(t.total_errors, 3);
        assert_eq!(t.count(ErrorStage::Verification), 2);
        assert!((t.share_of_errors(ErrorStage::Verification) - 66.666).abs() < 0.01);
        assert!((t.rate_of_questions(ErrorStage::Verification) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tally_is_zero() {
        let t = ErrorTally::default();
        assert_eq!(t.share_of_errors(ErrorStage::Verification), 0.0);
        assert_eq!(t.rate_of_questions(ErrorStage::Verification), 0.0);
    }

    #[test]
    fn stage_names() {
        assert_eq!(
            ErrorStage::PseudoGraphGeneration.name(),
            "pseudo-graph generation"
        );
    }
}
