//! ROUGE-L (Lin, 2004) — LCS-based recall/precision/F1 over word
//! tokens, with multi-reference max, as used for the paper's Nature
//! Questions evaluation (ROUGE-L-f1).

use crate::normalize::answer_tokens;
use serde::{Deserialize, Serialize};

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// LCS / candidate length.
    pub precision: f64,
    /// LCS / reference length.
    pub recall: f64,
    /// Harmonic mean (β = 1).
    pub f1: f64,
}

/// Length of the longest common subsequence between two token slices.
///
/// Classic O(n·m) dynamic program with a rolling row (O(min) memory).
pub fn lcs_len(a: &[String], b: &[String]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Keep the shorter sequence as the row for memory locality.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    for x in long {
        for (j, y) in short.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// ROUGE-L between a candidate and one reference (token-level).
pub fn rouge_l(candidate: &str, reference: &str) -> Prf {
    let c = answer_tokens(candidate);
    let r = answer_tokens(reference);
    if c.is_empty() || r.is_empty() {
        return Prf::default();
    }
    let lcs = lcs_len(&c, &r) as f64;
    let precision = lcs / c.len() as f64;
    let recall = lcs / r.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

/// Multi-reference ROUGE-L: the best F1 over all references (standard
/// multi-reference handling; the paper's three hand-written answers).
pub fn rouge_l_multi(candidate: &str, references: &[String]) -> Prf {
    references
        .iter()
        .map(|r| rouge_l(candidate, r))
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or_default()
}

/// Running mean of F1 scores (reported as percent, e.g. `37.5`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RougeAccumulator {
    /// Scored answers.
    pub total: usize,
    /// Sum of F1 values.
    pub f1_sum: f64,
}

impl RougeAccumulator {
    /// Record one scored answer.
    pub fn record(&mut self, prf: Prf) {
        self.total += 1;
        self.f1_sum += prf.f1;
    }

    /// Mean F1 in percent.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.f1_sum / self.total as f64
        }
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &RougeAccumulator) {
        self.total += other.total;
        self.f1_sum += other.f1_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn lcs_basic() {
        assert_eq!(lcs_len(&toks("a b c d"), &toks("a c d")), 3);
        assert_eq!(lcs_len(&toks("a b c"), &toks("x y z")), 0);
        assert_eq!(lcs_len(&toks("a b c"), &toks("a b c")), 3);
        assert_eq!(lcs_len(&[], &toks("a")), 0);
    }

    #[test]
    fn lcs_respects_order() {
        // "c a" vs "a c": LCS is 1, not 2.
        assert_eq!(lcs_len(&toks("c a"), &toks("a c")), 1);
    }

    #[test]
    fn identical_strings_score_one() {
        let p = rouge_l("Norland and Velia", "Norland and Velia");
        assert!((p.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        let p = rouge_l("alpha beta", "gamma delta");
        assert_eq!(p.f1, 0.0);
    }

    #[test]
    fn partial_overlap() {
        // candidate covers half the reference tokens.
        let p = rouge_l("Norland", "Norland Velia");
        assert!(p.recall > 0.4 && p.recall < 0.6);
        assert!((p.precision - 1.0).abs() < 1e-12);
        assert!(p.f1 > 0.6 && p.f1 < 0.7);
    }

    #[test]
    fn multi_reference_takes_best() {
        let refs = vec![
            "completely different words".to_string(),
            "Norland Velia".to_string(),
        ];
        let p = rouge_l_multi("Norland Velia", &refs);
        assert!((p.f1 - 1.0).abs() < 1e-12);
        assert_eq!(rouge_l_multi("x", &[]).f1, 0.0);
    }

    #[test]
    fn normalisation_applies() {
        // Case and punctuation must not matter.
        let p = rouge_l("The answer is NORLAND!", "the answer is Norland");
        assert!((p.f1 - 1.0).abs() < 1e-12, "{p:?}");
    }

    #[test]
    fn accumulator_mean() {
        let mut acc = RougeAccumulator::default();
        acc.record(Prf {
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        });
        acc.record(Prf::default());
        assert!((acc.percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_candidate_scores_zero() {
        assert_eq!(rouge_l("", "reference text").f1, 0.0);
        assert_eq!(rouge_l("candidate", "").f1, 0.0);
    }
}
