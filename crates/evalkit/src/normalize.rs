//! Answer normalisation shared by all metrics: lowercase, strip
//! punctuation and articles, collapse whitespace — the standard QA
//! normalisation recipe (SQuAD-style), which both Hit@1 and ROUGE
//! tokenisation build on.

/// Normalise a free-form answer string.
pub fn normalize_answer(s: &str) -> String {
    let lowered = s.to_lowercase();
    let mut out = String::with_capacity(lowered.len());
    for ch in lowered.chars() {
        if ch.is_alphanumeric() {
            out.push(ch);
        } else if !out.ends_with(' ') {
            out.push(' ');
        }
    }
    // Strip articles as whole words.
    let filtered: Vec<&str> = out
        .split_whitespace()
        .filter(|w| !matches!(*w, "a" | "an" | "the"))
        .collect();
    filtered.join(" ")
}

/// Word tokens of a normalised answer.
pub fn answer_tokens(s: &str) -> Vec<String> {
    normalize_answer(s)
        .split_whitespace()
        .map(|w| w.to_string())
        .collect()
}

/// Whether `answer` contains `gold` as a whole-word phrase after
/// normalisation ("the Meridian Prize." contains "Meridian Prize").
pub fn contains_phrase(answer: &str, gold: &str) -> bool {
    let a = normalize_answer(answer);
    let g = normalize_answer(gold);
    if g.is_empty() {
        return false;
    }
    if a == g {
        return true;
    }
    // Whole-word containment: pad with spaces.
    let padded = format!(" {a} ");
    padded.contains(&format!(" {g} "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(normalize_answer("Shanghai!"), "shanghai");
        assert_eq!(normalize_answer("The  Meridian   Prize."), "meridian prize");
    }

    #[test]
    fn strips_articles_only_as_words() {
        assert_eq!(normalize_answer("the theater"), "theater");
        assert_eq!(normalize_answer("An anthem"), "anthem");
    }

    #[test]
    fn tokens() {
        assert_eq!(answer_tokens("The Last Horizon"), ["last", "horizon"]);
    }

    #[test]
    fn phrase_containment() {
        assert!(contains_phrase(
            "I believe it is Shanghai, China.",
            "Shanghai"
        ));
        assert!(contains_phrase("the Meridian Prize", "Meridian Prize"));
        assert!(!contains_phrase("Port Marina", "Port Mar"));
        assert!(!contains_phrase("", "x"));
        assert!(!contains_phrase("something", ""));
    }

    #[test]
    fn unicode_normalisation() {
        assert_eq!(normalize_answer("Kovács, Kati"), "kovács kati");
    }
}
