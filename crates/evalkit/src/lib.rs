//! # evalkit — metrics and reporting
//!
//! Scoring machinery for the reproduction: SQuAD-style answer
//! normalisation, Hit@1 (SimpleQuestions / QALD-10), ROUGE-L with
//! multi-reference max (Nature Questions), aggregation statistics, the
//! paper's four-stage error taxonomy, and ASCII table rendering for the
//! paper-vs-measured reports.

#![warn(missing_docs)]

pub mod agg;
pub mod errors;
pub mod hit;
pub mod normalize;
pub mod rouge;
pub mod table;

pub use agg::{confidence95, std_error, summarize, Summary};
pub use errors::{ErrorStage, ErrorTally};
pub use hit::{is_hit, HitAccumulator};
pub use normalize::{answer_tokens, contains_phrase, normalize_answer};
pub use rouge::{lcs_len, rouge_l, rouge_l_multi, Prf, RougeAccumulator};
pub use table::{Cell, Table};
