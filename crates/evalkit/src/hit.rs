//! Hit@1 — the accuracy metric for precise question answering
//! (SimpleQuestions and QALD-10 in the paper).

use crate::normalize::contains_phrase;
use serde::{Deserialize, Serialize};

/// Whether a single answer hits any accepted gold surface form.
///
/// The answer counts as a hit if any accepted form appears in it as a
/// whole phrase (models answer in sentences: "Yao Ming was born in
/// Shanghai." hits gold "Shanghai").
pub fn is_hit(answer: &str, accepted: &[String]) -> bool {
    accepted.iter().any(|g| contains_phrase(answer, g))
}

/// Running Hit@1 accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HitAccumulator {
    /// Questions scored.
    pub total: usize,
    /// Questions answered correctly.
    pub hits: usize,
}

impl HitAccumulator {
    /// Record one scored answer.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        self.hits += usize::from(hit);
    }

    /// Accuracy in percent (the paper reports e.g. `48.6`).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.total as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &HitAccumulator) {
        self.total += other.total;
        self.hits += other.hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_hit() {
        assert!(is_hit("Shanghai", &acc(&["Shanghai"])));
    }

    #[test]
    fn sentence_hit() {
        assert!(is_hit(
            "Based on the graph, Yao Ming was born in Shanghai.",
            &acc(&["Shanghai"])
        ));
    }

    #[test]
    fn alias_hit() {
        assert!(is_hit(
            "He works for TS now",
            &acc(&["Tekna Systems", "TS"])
        ));
    }

    #[test]
    fn miss() {
        assert!(!is_hit("Beijing", &acc(&["Shanghai"])));
        assert!(!is_hit("", &acc(&["Shanghai"])));
    }

    #[test]
    fn accumulator_percent() {
        let mut a = HitAccumulator::default();
        for hit in [true, true, false, true] {
            a.record(hit);
        }
        assert_eq!(a.total, 4);
        assert!((a.percent() - 75.0).abs() < 1e-12);
        assert_eq!(HitAccumulator::default().percent(), 0.0);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = HitAccumulator { total: 2, hits: 1 };
        a.merge(&HitAccumulator { total: 2, hits: 2 });
        assert_eq!(a.total, 4);
        assert_eq!(a.hits, 3);
    }
}
