//! ASCII table rendering for the reproduction reports, matching the
//! layout of the paper's tables (rows = methods, columns = datasets).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A cell: either a measured value, a paper-vs-measured pair, text, or
/// absent (the paper's `-`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Just a number, rendered with one decimal.
    Value(f64),
    /// `paper → measured` comparison.
    PaperVsMeasured {
        /// Value reported in the paper.
        paper: f64,
        /// Value we measured.
        measured: f64,
    },
    /// Free text.
    Text(String),
    /// Missing (`-`).
    Absent,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Value(v) => format!("{v:.1}"),
            Cell::PaperVsMeasured { paper, measured } => {
                format!("{paper:.1} / {measured:.1}")
            }
            Cell::Text(t) => t.clone(),
            Cell::Absent => "-".to_string(),
        }
    }
}

/// A simple table builder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label + cells.
    pub rows: Vec<(String, Vec<Cell>)>,
}

impl Table {
    /// Start a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<Cell>) -> &mut Self {
        self.rows.push((label.into(), cells));
        self
    }

    /// Render to an ASCII string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        // Compute column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < ncols {
                    widths[i + 1] = widths[i + 1].max(c.render().len());
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, " {h:<w$} |");
        }
        out.push('\n');
        sep(&mut out);
        for (label, cells) in &self.rows {
            out.push('|');
            let _ = write!(out, " {label:<w$} |", w = widths[0]);
            for (w, cell) in widths[1..ncols]
                .iter()
                .zip(cells.iter().map(Some).chain(std::iter::repeat(None)))
            {
                let text = cell.map_or_else(String::new, |c| c.render());
                let _ = write!(out, " {text:<w$} |", w = w);
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Main results", &["Method", "SimpleQuestions", "QALD-10"]);
        t.row("IO", vec![Cell::Value(20.2), Cell::Value(38.7)]);
        t.row(
            "Ours",
            vec![
                Cell::PaperVsMeasured {
                    paper: 34.3,
                    measured: 33.9,
                },
                Cell::Absent,
            ],
        );
        let s = t.render();
        assert!(s.contains("Main results"));
        assert!(s.contains("20.2"));
        assert!(s.contains("34.3 / 33.9"));
        assert!(s.contains("| -"));
        // Every data line has the same length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len), "{s}");
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Value(48.62).render(), "48.6");
        assert_eq!(Cell::Absent.render(), "-");
        assert_eq!(Cell::Text("x".into()).render(), "x");
    }

    #[test]
    fn short_rows_render_empty_cells() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row("r", vec![Cell::Value(1.0)]);
        let s = t.render();
        assert!(s.contains("1.0"));
    }
}
