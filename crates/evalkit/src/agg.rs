//! Aggregation helpers: mean, standard deviation, and bootstrap-style
//! confidence bands over per-question scores.

use serde::{Deserialize, Serialize};

/// Summary statistics of a score series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarise a slice of scores.
pub fn summarize(scores: &[f64]) -> Summary {
    if scores.is_empty() {
        return Summary::default();
    }
    let n = scores.len();
    let mean = scores.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        scores.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &s in scores {
        min = min.min(s);
        max = max.max(s);
    }
    Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    }
}

/// Standard error of the mean.
pub fn std_error(s: &Summary) -> f64 {
    if s.n == 0 {
        0.0
    } else {
        s.std_dev / (s.n as f64).sqrt()
    }
}

/// A deterministic "bootstrap" 95% band using the normal approximation
/// (±1.96·SE). Deterministic by construction — no resampling RNG needed
/// at these sample sizes.
pub fn confidence95(s: &Summary) -> (f64, f64) {
    let half = 1.96 * std_error(s);
    (s.mean - half, s.mean + half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.2909944).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(summarize(&[]), Summary::default());
        let one = summarize(&[5.0]);
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.mean, 5.0);
    }

    #[test]
    fn confidence_band_contains_mean() {
        let s = summarize(&[10.0, 12.0, 11.0, 9.0, 13.0]);
        let (lo, hi) = confidence95(&s);
        assert!(lo < s.mean && s.mean < hi);
    }
}
