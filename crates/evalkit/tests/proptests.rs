//! Property-based tests of the metrics: ROUGE-L against a brute-force
//! LCS oracle, normalisation idempotence, Hit@1 monotonicity.

use evalkit::{answer_tokens, is_hit, lcs_len, normalize_answer, rouge_l, rouge_l_multi};
use proptest::prelude::*;

fn text() -> impl Strategy<Value = String> {
    "[a-zA-Z ,.]{0,50}"
}

/// Exponential-time-but-tiny reference LCS for the oracle comparison.
fn lcs_oracle(a: &[String], b: &[String]) -> usize {
    if a.is_empty() || b.is_empty() {
        0
    } else if a[0] == b[0] {
        1 + lcs_oracle(&a[1..], &b[1..])
    } else {
        lcs_oracle(&a[1..], b).max(lcs_oracle(a, &b[1..]))
    }
}

proptest! {
    /// The rolling-row LCS matches the recursive oracle on short inputs.
    #[test]
    fn lcs_matches_oracle(
        a in proptest::collection::vec("[ab c]{1,3}", 0..8),
        b in proptest::collection::vec("[ab c]{1,3}", 0..8),
    ) {
        prop_assert_eq!(lcs_len(&a, &b), lcs_oracle(&a, &b));
    }

    /// Normalisation is idempotent.
    #[test]
    fn normalize_idempotent(t in text()) {
        let once = normalize_answer(&t);
        prop_assert_eq!(normalize_answer(&once), once.clone());
        // And produces only lowercase alphanumerics + single spaces.
        prop_assert!(!once.contains("  "));
        prop_assert!(once.chars().all(|c| c.is_alphanumeric() || c == ' '));
    }

    /// ROUGE-L is symmetric in F1 sign properties: score within [0,1],
    /// exact self-match = 1.
    #[test]
    fn rouge_bounds_and_identity(t in text()) {
        let p = rouge_l(&t, &t);
        if answer_tokens(&t).is_empty() {
            prop_assert_eq!(p.f1, 0.0);
        } else {
            prop_assert!((p.f1 - 1.0).abs() < 1e-9);
        }
        let q = rouge_l(&t, "completely unrelated zzz qqq");
        prop_assert!((0.0..=1.0).contains(&q.f1));
    }

    /// Multi-reference ROUGE is the max over single references.
    #[test]
    fn multi_ref_is_max(cand in text(), refs in proptest::collection::vec(text(), 1..4)) {
        let multi = rouge_l_multi(&cand, &refs);
        let best = refs
            .iter()
            .map(|r| rouge_l(&cand, r).f1)
            .fold(0.0f64, f64::max);
        prop_assert!((multi.f1 - best).abs() < 1e-12);
    }

    /// Hit@1 is monotone in the accepted set: adding surface forms never
    /// turns a hit into a miss.
    #[test]
    fn hit_monotone_in_accepted(ans in text(), mut accepted in proptest::collection::vec(text(), 0..4), extra in text()) {
        let before = is_hit(&ans, &accepted);
        accepted.push(extra);
        let after = is_hit(&ans, &accepted);
        prop_assert!(!before || after);
    }

    /// An answer containing the gold phrase verbatim always hits.
    #[test]
    fn verbatim_containment_hits(gold in "[a-zA-Z]{2,10}( [a-zA-Z]{2,10}){0,2}") {
        let ans = format!("I believe the answer is {gold}, most likely.");
        prop_assert!(is_hit(&ans, &[gold]));
    }
}
