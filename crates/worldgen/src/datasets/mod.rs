//! QA dataset generators mirroring the paper's three benchmarks:
//!
//! * [`simpleq`] — SimpleQuestions-like single-hop factoids grounded in
//!   the Freebase-style source;
//! * [`qald`] — QALD-10-like multi-hop and comparison questions grounded
//!   in the Wikidata-style source;
//! * [`nature`] — Nature-Questions-like open-ended questions (list
//!   answers, "who are the pioneers of …", and new-knowledge questions),
//!   each with three reference answers for ROUGE-L.

pub mod nature;
pub mod qald;
pub mod simpleq;

use crate::schema::RelId;
use crate::world::{EntityId, World};
use serde::{Deserialize, Serialize};

/// Which benchmark a question belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Single-hop factoid (Hit@1, Freebase-grounded).
    SimpleQuestions,
    /// Multi-hop / comparison (Hit@1, Wikidata-grounded).
    Qald,
    /// Open-ended (ROUGE-L, three references).
    NatureQuestions,
}

impl DatasetKind {
    /// Display name used in report tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::SimpleQuestions => "SimpleQuestions",
            DatasetKind::Qald => "QALD-10",
            DatasetKind::NatureQuestions => "Nature Questions",
        }
    }
}

/// The structured semantics of a question.
///
/// The *question text* is what retrieval components see; the intent is
/// what a language model "understands" when reading the question. The
/// simulated LLM keys its (possibly wrong) parametric recall on the
/// intent; the gold answer is never exposed through it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Intent {
    /// Follow a chain of functional relations from a seed entity
    /// (1 hop = SimpleQuestions, 2–3 hops = QALD).
    Chain {
        /// The entity named in the question.
        seed: EntityId,
        /// Relations to follow, in order.
        path: Vec<RelId>,
    },
    /// Which of `a`, `b` has more objects under `rel`?
    Compare {
        /// First candidate.
        a: EntityId,
        /// Second candidate.
        b: EntityId,
        /// The multi-valued relation being counted.
        rel: RelId,
    },
    /// Enumerate the objects of `(seed, rel, ·)`.
    List {
        /// Subject entity.
        seed: EntityId,
        /// Multi-valued relation.
        rel: RelId,
    },
    /// Enumerate the subjects of `(·, rel, object)` ("who are the
    /// pioneers of X?").
    WhoList {
        /// Object entity.
        object: EntityId,
        /// Relation.
        rel: RelId,
    },
}

/// Gold data for scoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Gold {
    /// Hit@1: the answer is correct if it matches any accepted surface
    /// form (label/aliases of any acceptable entity).
    Accepted(Vec<String>),
    /// ROUGE-L: three human-style reference answers; score against the
    /// best-matching one.
    References(Vec<String>),
}

/// One benchmark question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Question {
    /// Stable id within the dataset (`sq-17`, `qald-3`, `nq-42`).
    pub id: String,
    /// Which benchmark.
    pub dataset: DatasetKind,
    /// The natural-language question.
    pub text: String,
    /// Structured semantics (see [`Intent`]).
    pub intent: Intent,
    /// Gold answers for scoring.
    pub gold: Gold,
}

/// A generated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Which benchmark.
    pub kind: DatasetKind,
    /// Questions in generation order.
    pub questions: Vec<Question>,
}

impl Dataset {
    /// Number of questions.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }
}

/// Accepted surface forms for an entity: label plus aliases.
pub(crate) fn accepted_surfaces(world: &World, id: EntityId) -> Vec<String> {
    let e = world.entity(id);
    let mut v = vec![e.label.clone()];
    v.extend(e.aliases.iter().cloned());
    v
}

/// When a label is ambiguous, questions refer to the most popular holder
/// (asking "Where was Yao Ming born?" means the famous one). Returns the
/// canonical entity for a label.
pub(crate) fn canonical_holder(world: &World, id: EntityId) -> EntityId {
    let label = &world.entity(id).label;
    let kind = world.entity(id).kind;
    world
        .entities_of_kind(kind)
        .iter()
        .copied()
        .filter(|&other| &world.entity(other).label == label)
        .max_by(|&a, &b| {
            world
                .entity(a)
                .popularity
                .partial_cmp(&world.entity(b).popularity)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(id)
}

/// Render an English list: `a`, `a and b`, `a, b, and c`.
pub fn english_list(items: &[String]) -> String {
    match items.len() {
        0 => String::new(),
        1 => items[0].clone(),
        2 => format!("{} and {}", items[0], items[1]),
        _ => {
            let (last, init) = items.split_last().unwrap();
            format!("{}, and {}", init.join(", "), last)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, WorldConfig};

    #[test]
    fn english_list_forms() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(english_list(&s(&["a"])), "a");
        assert_eq!(english_list(&s(&["a", "b"])), "a and b");
        assert_eq!(english_list(&s(&["a", "b", "c"])), "a, b, and c");
        assert_eq!(english_list(&[]), "");
    }

    #[test]
    fn canonical_holder_prefers_popular() {
        let w = generate(&WorldConfig::default());
        // Find a duplicated label.
        let mut by_label: std::collections::HashMap<&str, Vec<EntityId>> = Default::default();
        for e in &w.entities {
            by_label.entry(e.label.as_str()).or_default().push(e.id);
        }
        let dupes = by_label
            .values()
            .find(|v| v.len() > 1)
            .expect("ambiguity exists");
        let canon = canonical_holder(&w, dupes[1]);
        for &other in dupes.iter() {
            assert!(w.entity(canon).popularity >= w.entity(other).popularity);
        }
    }

    #[test]
    fn dataset_kind_names() {
        assert_eq!(DatasetKind::Qald.name(), "QALD-10");
    }
}
