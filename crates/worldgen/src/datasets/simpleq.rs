//! SimpleQuestions-like generator: single-hop factoid questions over
//! facts the Freebase-style source can answer (classic, non-recent
//! relations with a question template).

use super::{accepted_surfaces, canonical_holder, Dataset, DatasetKind, Gold, Intent, Question};
use crate::schema::{all_rel_ids, EntityKind, RelId};
use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probability a person is referred to casually (surname only), the way
/// crowdworkers phrase questions ("Where was Turing born?"). Casual
/// mentions are trivial for a language model to resolve but break naive
/// surface-form entity matching against the KG — the entity-linking gap
/// the paper's pseudo-graph step exists to close.
const CASUAL_MENTION_RATE: f64 = 0.5;

/// Relations eligible for SimpleQuestions: direct question template,
/// functional (single answer for Hit@1), not recent (FB2M is frozen).
fn eligible_relations() -> Vec<RelId> {
    all_rel_ids()
        .filter(|r| {
            let s = r.spec();
            s.question.is_some() && s.max_objects == 1 && !s.recent
        })
        .collect()
}

/// Generate `n` single-hop questions.
pub fn generate(world: &World, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = eligible_relations();
    // Collect all (subject, rel, object) candidates up front so sampling
    // is uniform over askable facts, as in the original dataset's
    // fact-driven construction.
    let mut candidates = Vec::new();
    for &rel in &rels {
        for f in &world.facts {
            if f.rel == rel {
                candidates.push(*f);
            }
        }
    }
    let mut questions = Vec::with_capacity(n);
    let mut used = std::collections::HashSet::new();
    let mut attempts = 0;
    while questions.len() < n && attempts < n * 50 {
        attempts += 1;
        let f = candidates[rng.random_range(0..candidates.len())];
        // Questions refer to entities by surface form; point the intent
        // at the canonical (most popular) holder of the label and skip
        // if that changes the answer.
        let canon = canonical_holder(world, f.s);
        if canon != f.s {
            continue;
        }
        let spec = f.rel.spec();
        let subject = &world.entity(f.s);
        let mention =
            if subject.kind == EntityKind::Person && rng.random::<f64>() < CASUAL_MENTION_RATE {
                subject
                    .label
                    .split_whitespace()
                    .last()
                    .unwrap_or(&subject.label)
                    .to_string()
            } else {
                subject.label.clone()
            };
        let text = spec
            .question
            .expect("eligible relation has template")
            .replace("{s}", &mention);
        if !used.insert(text.clone()) {
            continue; // casual mentions can collide across subjects
        }
        let objects = world.objects_of(f.s, f.rel);
        let mut accepted = Vec::new();
        for o in &objects {
            accepted.extend(accepted_surfaces(world, *o));
        }
        questions.push(Question {
            id: format!("sq-{}", questions.len()),
            dataset: DatasetKind::SimpleQuestions,
            text,
            intent: Intent::Chain {
                seed: f.s,
                path: vec![f.rel],
            },
            gold: Gold::Accepted(accepted),
        });
    }
    Dataset {
        kind: DatasetKind::SimpleQuestions,
        questions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate as gen_world, WorldConfig};

    fn world() -> World {
        gen_world(&WorldConfig::default())
    }

    #[test]
    fn generates_requested_count() {
        let w = world();
        let d = generate(&w, 100, 1);
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn questions_are_single_hop() {
        let w = world();
        let d = generate(&w, 50, 1);
        for q in &d.questions {
            match &q.intent {
                Intent::Chain { path, .. } => assert_eq!(path.len(), 1),
                other => panic!("unexpected intent {other:?}"),
            }
        }
    }

    #[test]
    fn gold_matches_world_fact() {
        let w = world();
        let d = generate(&w, 50, 1);
        for q in &d.questions {
            let Intent::Chain { seed, path } = &q.intent else {
                unreachable!()
            };
            let objects = w.objects_of(*seed, path[0]);
            let Gold::Accepted(accepted) = &q.gold else {
                unreachable!()
            };
            assert!(objects
                .iter()
                .any(|o| accepted.contains(&w.entity(*o).label)));
        }
    }

    #[test]
    fn question_text_mentions_subject_or_casual_form() {
        let w = world();
        let d = generate(&w, 30, 2);
        for q in &d.questions {
            let Intent::Chain { seed, .. } = &q.intent else {
                unreachable!()
            };
            let label = &w.entity(*seed).label;
            let surname = label.split_whitespace().last().unwrap();
            assert!(
                q.text.contains(label.as_str()) || q.text.contains(surname),
                "{}",
                q.text
            );
        }
    }

    #[test]
    fn casual_mentions_occur() {
        let w = world();
        let d = generate(&w, 200, 2);
        let casual = d
            .questions
            .iter()
            .filter(|q| {
                let Intent::Chain { seed, .. } = &q.intent else {
                    return false;
                };
                !q.text.contains(w.entity(*seed).label.as_str())
            })
            .count();
        assert!(casual > 30, "casual mentions expected: {casual}/200");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let a = generate(&w, 40, 9);
        let b = generate(&w, 40, 9);
        assert_eq!(
            a.questions.iter().map(|q| &q.text).collect::<Vec<_>>(),
            b.questions.iter().map(|q| &q.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_recent_relations() {
        let w = world();
        let d = generate(&w, 80, 3);
        for q in &d.questions {
            let Intent::Chain { path, .. } = &q.intent else {
                unreachable!()
            };
            assert!(!path[0].spec().recent);
        }
    }

    #[test]
    fn no_duplicate_questions() {
        let w = world();
        let d = generate(&w, 100, 4);
        let set: std::collections::HashSet<&String> = d.questions.iter().map(|q| &q.text).collect();
        assert_eq!(set.len(), d.len());
    }
}
