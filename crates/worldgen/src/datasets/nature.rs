//! Nature-Questions-like generator: open-ended questions "people
//! commonly ask in daily life" — list answers, multiple-answer
//! responses, and queries about new knowledge — each with three
//! reference answers, as in the paper's hand-built 50-question set.

use super::{english_list, Dataset, DatasetKind, Gold, Intent, Question};
use crate::schema::{all_rel_ids, rel_by_name, RelId};
use crate::world::{EntityId, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` open-ended questions (the paper uses 50).
pub fn generate(world: &World, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut questions = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0;
    while questions.len() < n && attempts < n * 300 {
        attempts += 1;
        let q = match attempts % 3 {
            0 => make_list(world, &mut rng),
            1 => make_who_list(world, &mut rng),
            _ => make_recent(world, &mut rng),
        };
        let Some(q) = q else { continue };
        if !seen.insert(q.text.clone()) {
            continue;
        }
        let mut q = q;
        q.id = format!("nq-{}", questions.len());
        questions.push(q);
    }
    Dataset {
        kind: DatasetKind::NatureQuestions,
        questions,
    }
}

/// Multi-valued relations suitable for list questions.
fn list_rels() -> Vec<RelId> {
    all_rel_ids()
        .filter(|r| {
            let s = r.spec();
            s.max_objects >= 3 && s.question.is_some() && !s.recent
        })
        .collect()
}

/// Mild popularity bias: daily-life questions are about things people
/// have heard of (tournament of 4).
fn pick_known(world: &World, ids: &[EntityId], rng: &mut StdRng) -> EntityId {
    let mut best = ids[rng.random_range(0..ids.len())];
    for _ in 0..3 {
        let c = ids[rng.random_range(0..ids.len())];
        if world.entity(c).popularity > world.entity(best).popularity {
            best = c;
        }
    }
    best
}

fn make_list(world: &World, rng: &mut StdRng) -> Option<Question> {
    let rels = list_rels();
    let rel = rels[rng.random_range(0..rels.len())];
    let spec = rel.spec();
    let subjects = world.entities_of_kind(spec.subject);
    let seed = pick_known(world, subjects, rng);
    let objects = world.objects_of(seed, rel);
    if objects.len() < 3 {
        return None;
    }
    let labels: Vec<String> = objects
        .iter()
        .map(|&o| world.label(o).to_string())
        .collect();
    let text = spec
        .question
        .expect("list relation has template")
        .replace("{s}", world.label(seed));
    let subject_label = world.label(seed).to_string();
    Some(Question {
        id: String::new(),
        dataset: DatasetKind::NatureQuestions,
        text,
        intent: Intent::List { seed, rel },
        gold: Gold::References(references(&subject_label, spec.phrase, &labels)),
    })
}

fn make_who_list(world: &World, rng: &mut StdRng) -> Option<Question> {
    let rel = rel_by_name("known_for_pioneering").expect("schema relation");
    let fields = world.entities_of_kind(rel.spec().object);
    let field = fields[rng.random_range(0..fields.len())];
    let subjects: Vec<EntityId> = world.subjects_with(rel, field);
    if subjects.len() < 2 {
        return None;
    }
    let labels: Vec<String> = subjects
        .iter()
        .map(|&s| world.label(s).to_string())
        .collect();
    let field_label = world.label(field).to_string();
    let text =
        format!("Who are the people acknowledged as trailblazers in the field of {field_label}?");
    Some(Question {
        id: String::new(),
        dataset: DatasetKind::NatureQuestions,
        text,
        intent: Intent::WhoList { object: field, rel },
        gold: Gold::References(references(
            &format!("pioneers of {field_label}"),
            "include",
            &labels,
        )),
    })
}

/// New-knowledge question over a recent relation (paper's "What kind of
/// chips does the Apple Vision Pro use?").
fn make_recent(world: &World, rng: &mut StdRng) -> Option<Question> {
    let rels: Vec<RelId> = all_rel_ids()
        .filter(|r| r.spec().recent && r.spec().question.is_some())
        .collect();
    let rel = rels[rng.random_range(0..rels.len())];
    let spec = rel.spec();
    let subjects = world.entities_of_kind(spec.subject);
    let seed = pick_known(world, subjects, rng);
    let objects = world.objects_of(seed, rel);
    if objects.is_empty() {
        return None;
    }
    let labels: Vec<String> = objects
        .iter()
        .map(|&o| world.label(o).to_string())
        .collect();
    let text = spec
        .question
        .expect("recent relation has template")
        .replace("{s}", world.label(seed));
    let subject_label = world.label(seed).to_string();
    Some(Question {
        id: String::new(),
        dataset: DatasetKind::NatureQuestions,
        text,
        intent: Intent::List { seed, rel },
        gold: Gold::References(references(&subject_label, spec.phrase, &labels)),
    })
}

/// Three human-style reference answers with different registers, each
/// covering the complete gold list (the paper expected references to be
/// "comprehensive enough"). Hand-written answers are explanatory prose,
/// not bare lists — the surrounding wording intentionally diverges from
/// any machine answer's boilerplate, which is what keeps even perfect
/// content from scoring ROUGE-L anywhere near 1.0.
fn references(subject: &str, phrase: &str, labels: &[String]) -> Vec<String> {
    let mut sorted = labels.to_vec();
    sorted.sort();
    let list = english_list(&sorted);
    let n = sorted.len();
    if n <= 2 {
        // Short-answer questions get short references.
        let _ = (subject, phrase);
        return vec![
            format!("The answer is {list}."),
            format!("As far as I know, it is {list}."),
            format!("{list} — that is what reliable sources say."),
        ];
    }
    vec![
        format!("As far as I know, it includes {list}."),
        format!("There are {n} answers commonly mentioned: {list}."),
        format!("To be comprehensive, the full set is {list}."),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate as gen_world, WorldConfig};

    fn world() -> World {
        gen_world(&WorldConfig::default())
    }

    #[test]
    fn generates_fifty_questions() {
        let w = world();
        let d = generate(&w, 50, 21);
        assert_eq!(d.len(), 50);
    }

    #[test]
    fn every_question_has_three_references() {
        let w = world();
        let d = generate(&w, 50, 21);
        for q in &d.questions {
            let Gold::References(refs) = &q.gold else {
                panic!("nature questions must use references")
            };
            assert_eq!(refs.len(), 3);
            for r in refs {
                assert!(!r.is_empty());
            }
        }
    }

    #[test]
    fn mix_of_intents() {
        let w = world();
        let d = generate(&w, 50, 22);
        let lists = d
            .questions
            .iter()
            .filter(|q| matches!(q.intent, Intent::List { .. }))
            .count();
        let wholists = d
            .questions
            .iter()
            .filter(|q| matches!(q.intent, Intent::WhoList { .. }))
            .count();
        assert!(lists >= 10, "lists: {lists}");
        assert!(wholists >= 5, "who-lists: {wholists}");
    }

    #[test]
    fn includes_recent_knowledge_questions() {
        let w = world();
        let d = generate(&w, 50, 23);
        let recent = d
            .questions
            .iter()
            .filter(|q| match &q.intent {
                Intent::List { rel, .. } => rel.spec().recent,
                _ => false,
            })
            .count();
        assert!(recent >= 8, "recent: {recent}");
    }

    #[test]
    fn references_contain_gold_labels() {
        let w = world();
        let d = generate(&w, 30, 24);
        for q in &d.questions {
            let gold_labels: Vec<String> = match &q.intent {
                Intent::List { seed, rel } => w
                    .objects_of(*seed, *rel)
                    .iter()
                    .map(|&o| w.label(o).to_string())
                    .collect(),
                Intent::WhoList { object, rel } => w
                    .subjects_with(*rel, *object)
                    .iter()
                    .map(|&s| w.label(s).to_string())
                    .collect(),
                _ => continue,
            };
            let Gold::References(refs) = &q.gold else {
                unreachable!()
            };
            for label in &gold_labels {
                assert!(
                    refs.iter().all(|r| r.contains(label)),
                    "label {label} missing from references of {}",
                    q.text
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = generate(&w, 50, 30);
        let b = generate(&w, 50, 30);
        assert_eq!(
            a.questions.iter().map(|q| &q.text).collect::<Vec<_>>(),
            b.questions.iter().map(|q| &q.text).collect::<Vec<_>>()
        );
    }
}
