//! QALD-10-like generator: multi-hop chain questions ("Where was the
//! director of X born?") and comparison questions ("Who covers more
//! countries, the Andes or the Himalayas?"), Wikidata-grounded.

use super::{accepted_surfaces, canonical_holder, Dataset, DatasetKind, Gold, Intent, Question};
use crate::schema::{all_rel_ids, RelId};
use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction of questions that are comparisons (the rest are chains).
const COMPARE_SHARE: f64 = 0.2;
/// Hop distribution among chain questions. Real QALD-10 mixes simple
/// lookups about famous entities with genuinely multi-hop queries.
const ONE_HOP_SHARE: f64 = 0.56;
const THREE_HOP_SHARE: f64 = 0.13;

fn chainable(r: RelId) -> bool {
    let s = r.spec();
    s.descriptor.is_some() && s.max_objects == 1 && !s.recent
}

fn askable(r: RelId) -> bool {
    let s = r.spec();
    s.question.is_some() && s.max_objects == 1 && !s.recent
}

fn comparable(r: RelId) -> bool {
    let s = r.spec();
    s.max_objects >= 3 && s.question.is_some() && !s.recent
}

/// Generate `n` QALD-style questions.
pub fn generate(world: &World, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let chain_rels: Vec<RelId> = all_rel_ids().filter(|&r| chainable(r)).collect();
    let ask_rels: Vec<RelId> = all_rel_ids().filter(|&r| askable(r)).collect();
    let cmp_rels: Vec<RelId> = all_rel_ids().filter(|&r| comparable(r)).collect();

    let mut questions = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0;
    while questions.len() < n && attempts < n * 400 {
        attempts += 1;
        let q = if rng.random::<f64>() < COMPARE_SHARE {
            make_compare(world, &cmp_rels, &mut rng)
        } else {
            let u = rng.random::<f64>();
            let hops = if u < ONE_HOP_SHARE {
                1
            } else if u < ONE_HOP_SHARE + THREE_HOP_SHARE {
                3
            } else {
                2
            };
            make_chain(world, &chain_rels, &ask_rels, hops, &mut rng)
        };
        let Some(q) = q else { continue };
        if !seen.insert(q.text.clone()) {
            continue;
        }
        let mut q = q;
        q.id = format!("qald-{}", questions.len());
        questions.push(q);
    }
    Dataset {
        kind: DatasetKind::Qald,
        questions,
    }
}

/// Tournament selection with popularity bias: real QALD questions ask
/// about well-known entities, not uniform samples of the KG.
fn pick_popular(
    world: &World,
    ids: &[crate::world::EntityId],
    rng: &mut StdRng,
) -> crate::world::EntityId {
    // Uniform draw from the most popular ~12% of the pool (sorted view
    // computed on the fly; pools are small).
    let mut sorted: Vec<_> = ids.to_vec();
    sorted.sort_by(|&a, &b| {
        world
            .entity(b)
            .popularity
            .partial_cmp(&world.entity(a).popularity)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let head = (sorted.len() / 4).max(2).min(sorted.len());
    sorted[rng.random_range(0..head)]
}

/// Build an `hops`-hop chain: inner hops use `descriptor` relations, the
/// outermost uses a `question` relation. The chain must resolve uniquely
/// in the world.
fn make_chain(
    world: &World,
    chain_rels: &[RelId],
    ask_rels: &[RelId],
    hops: usize,
    rng: &mut StdRng,
) -> Option<Question> {
    // Build the path backwards: final (asked) relation first.
    let last = ask_rels[rng.random_range(0..ask_rels.len())];
    let mut path = vec![last];
    for _ in 1..hops {
        // Need a relation whose object kind equals the subject kind of
        // the current head.
        let head_subject = path[0].spec().subject;
        let candidates: Vec<RelId> = chain_rels
            .iter()
            .copied()
            .filter(|r| r.spec().object == head_subject && r.spec().subject != head_subject)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        path.insert(0, candidates[rng.random_range(0..candidates.len())]);
    }

    // Pick a seed that resolves through the whole chain.
    let seeds = world.entities_of_kind(path[0].spec().subject);
    if seeds.is_empty() {
        return None;
    }
    let seed = pick_popular(world, seeds, rng);
    if canonical_holder(world, seed) != seed {
        return None;
    }
    let mut cur = seed;
    for &rel in &path {
        let objs = world.objects_of(cur, rel);
        if objs.len() != 1 {
            return None;
        }
        cur = objs[0];
    }
    let answer = cur;

    // Render the text: innermost descriptor outwards, then the question
    // template of the last relation.
    let mut referent = world.entity(seed).label.clone();
    for &rel in &path[..path.len() - 1] {
        referent = rel
            .spec()
            .descriptor
            .expect("chain relations have descriptors")
            .replace("{s}", &referent);
    }
    let text = path
        .last()
        .unwrap()
        .spec()
        .question
        .expect("asked relation has template")
        .replace("{s}", &referent);

    Some(Question {
        id: String::new(),
        dataset: DatasetKind::Qald,
        text,
        intent: Intent::Chain { seed, path },
        gold: Gold::Accepted(accepted_surfaces(world, answer)),
    })
}

/// Build a comparison question over a multi-valued relation.
fn make_compare(world: &World, cmp_rels: &[RelId], rng: &mut StdRng) -> Option<Question> {
    if cmp_rels.is_empty() {
        return None;
    }
    let rel = cmp_rels[rng.random_range(0..cmp_rels.len())];
    let spec = rel.spec();
    let subjects = world.entities_of_kind(spec.subject);
    if subjects.len() < 2 {
        return None;
    }
    let a = pick_popular(world, subjects, rng);
    let b = pick_popular(world, subjects, rng);
    if a == b || canonical_holder(world, a) != a || canonical_holder(world, b) != b {
        return None;
    }
    let ca = world.objects_of(a, rel).len();
    let cb = world.objects_of(b, rel).len();
    if ca == cb || ca == 0 || cb == 0 {
        return None; // ties and empty sides are unanswerable
    }
    let winner = if ca > cb { a } else { b };
    let (la, lb) = (world.entity(a).label.clone(), world.entity(b).label.clone());
    let text = format!(
        "Which {} {} more {}, {} or {}?",
        spec.subject.noun(),
        verb_for(spec.name),
        object_plural(rel),
        la,
        lb,
    );
    Some(Question {
        id: String::new(),
        dataset: DatasetKind::Qald,
        text,
        intent: Intent::Compare { a, b, rel },
        gold: Gold::Accepted(accepted_surfaces(world, winner)),
    })
}

fn verb_for(rel_name: &str) -> &'static str {
    match rel_name {
        "covers" => "covers",
        "flows_through" => "flows through",
        "band_member" => "has",
        "starring" => "features",
        _ => "has",
    }
}

fn object_plural(rel: RelId) -> String {
    let noun = rel.spec().object.noun();
    if noun.ends_with('s') {
        noun.to_string()
    } else if let Some(stem) = noun.strip_suffix('y') {
        format!("{stem}ies")
    } else {
        format!("{noun}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate as gen_world, WorldConfig};

    fn world() -> World {
        gen_world(&WorldConfig::default())
    }

    #[test]
    fn generates_requested_count() {
        let w = world();
        let d = generate(&w, 120, 5);
        assert_eq!(d.len(), 120);
    }

    #[test]
    fn has_both_chain_and_compare() {
        let w = world();
        let d = generate(&w, 120, 5);
        let chains = d
            .questions
            .iter()
            .filter(|q| matches!(q.intent, Intent::Chain { .. }))
            .count();
        let compares = d.len() - chains;
        assert!(chains > 40, "chains: {chains}");
        assert!(compares >= 12, "compares: {compares}");
    }

    #[test]
    fn chains_are_multi_hop_and_resolve() {
        let w = world();
        let d = generate(&w, 80, 6);
        for q in &d.questions {
            if let Intent::Chain { seed, path } = &q.intent {
                assert!(!path.is_empty() && path.len() <= 3);
                let mut cur = *seed;
                for rel in path {
                    let objs = w.objects_of(cur, *rel);
                    assert_eq!(objs.len(), 1, "chain must resolve uniquely");
                    cur = objs[0];
                }
                let Gold::Accepted(acc) = &q.gold else {
                    unreachable!()
                };
                assert!(acc.contains(&w.entity(cur).label.clone()));
            }
        }
    }

    #[test]
    fn compare_gold_is_actual_winner() {
        let w = world();
        let d = generate(&w, 100, 7);
        for q in &d.questions {
            if let Intent::Compare { a, b, rel } = &q.intent {
                let (ca, cb) = (w.objects_of(*a, *rel).len(), w.objects_of(*b, *rel).len());
                assert_ne!(ca, cb);
                let winner = if ca > cb { *a } else { *b };
                let Gold::Accepted(acc) = &q.gold else {
                    unreachable!()
                };
                assert!(acc.contains(&w.entity(winner).label.clone()));
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = generate(&w, 50, 11);
        let b = generate(&w, 50, 11);
        assert_eq!(
            a.questions.iter().map(|q| &q.text).collect::<Vec<_>>(),
            b.questions.iter().map(|q| &q.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chain_text_nests_descriptors() {
        let w = world();
        let d = generate(&w, 80, 12);
        let two_hop = d
            .questions
            .iter()
            .find(|q| matches!(&q.intent, Intent::Chain { path, .. } if path.len() == 2))
            .expect("some 2-hop question");
        assert!(two_hop.text.contains("the "), "{}", two_hop.text);
    }

    #[test]
    fn hop_mix_includes_single_and_multi() {
        let w = world();
        let d = generate(&w, 200, 13);
        let mut one = 0;
        let mut multi = 0;
        for q in &d.questions {
            if let Intent::Chain { path, .. } = &q.intent {
                if path.len() == 1 {
                    one += 1;
                } else {
                    multi += 1;
                }
            }
        }
        assert!(one > 30, "1-hop share too small: {one}");
        assert!(multi > 30, "multi-hop share too small: {multi}");
    }

    #[test]
    fn seeds_are_popular() {
        let w = world();
        let d = generate(&w, 100, 14);
        let mut pops = Vec::new();
        for q in &d.questions {
            if let Intent::Chain { seed, .. } = &q.intent {
                pops.push(w.entity(*seed).popularity);
            }
        }
        let mean: f64 = pops.iter().sum::<f64>() / pops.len() as f64;
        assert!(mean > 0.1, "QALD should ask about popular entities: {mean}");
    }
}
