//! Explicit alias and redirect tables derived from the ground-truth
//! world — deterministically and *without* consuming randomness, so
//! emitting them leaves every generated world byte-identical to a
//! generation that never asked for them.
//!
//! Real KGs ship redirects ("Shanghai Municipality" → Shanghai) and
//! alias tables next to labels. The generator already gives entities
//! aliases and deliberately ambiguous labels; this module derives the
//! explicit surface tables the entity index consumes:
//! * every alias already on an entity, flattened to `(entity, alias)`;
//! * a disambiguating redirect `"<label> (<description>)"` → entity for
//!   every entity whose label is shared (the "7 Yao Mings");
//! * a composed-initialism redirect for multiword labels whose
//!   initialism is globally unique and not already an alias.

use crate::world::{EntityId, World};
use kgstore::hash::FxHashMap;

/// Alias and redirect tables for a world.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurfaceTable {
    /// `(entity, alias)` pairs, in entity order then alias order.
    pub aliases: Vec<(EntityId, String)>,
    /// `surface → entity` redirects, in entity order; surfaces are
    /// unique across the table.
    pub redirects: Vec<(String, EntityId)>,
}

/// Initialism of a multiword label ("Tekna Systems" → "TS"), `None`
/// for single words or degenerate results.
fn initialism(label: &str) -> Option<String> {
    label.split_whitespace().nth(1)?;
    let init: String = label
        .split_whitespace()
        .filter_map(|w| w.chars().next())
        .collect::<String>()
        .to_uppercase();
    (init.len() > 1).then_some(init)
}

/// Derive the surface table. Pure: reads the world, draws no
/// randomness, and is deterministic in the world alone.
pub fn surface_table(world: &World) -> SurfaceTable {
    let mut label_count: FxHashMap<&str, u32> = FxHashMap::default();
    for e in &world.entities {
        *label_count.entry(e.label.as_str()).or_default() += 1;
    }
    let mut initialism_count: FxHashMap<String, u32> = FxHashMap::default();
    for e in &world.entities {
        if let Some(i) = initialism(&e.label) {
            *initialism_count.entry(i).or_default() += 1;
        }
    }

    let mut table = SurfaceTable::default();
    for e in &world.entities {
        for a in &e.aliases {
            table.aliases.push((e.id, a.clone()));
        }
        // Shared label → each namesake gets a disambiguated redirect.
        // Descriptions are unique per (kind, label) by construction
        // ("#N by prominence" / "lesser-known namesake N"), so the
        // composed surface is unique too.
        if label_count[e.label.as_str()] > 1 {
            table
                .redirects
                .push((format!("{} ({})", e.label, e.description), e.id));
        }
        // Composed initialism, only when globally unambiguous: unique
        // among initialisms, not itself a label, not already an alias.
        if let Some(i) = initialism(&e.label) {
            if initialism_count[&i] == 1
                && !label_count.contains_key(i.as_str())
                && !e.aliases.contains(&i)
            {
                table.redirects.push((i, e.id));
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, WorldConfig};
    use kgstore::hash::FxHashSet;

    #[test]
    fn surface_table_is_deterministic_and_pure() {
        let w = generate(&WorldConfig::default());
        let a = surface_table(&w);
        let b = surface_table(&w);
        assert_eq!(a, b);
        // Purity: deriving the table does not disturb the world — the
        // same generation with and without table emission is identical.
        let again = generate(&WorldConfig::default());
        assert_eq!(w.entity_count(), again.entity_count());
        assert_eq!(w.fact_count(), again.fact_count());
        for (x, y) in w.entities.iter().zip(&again.entities) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.aliases, y.aliases);
        }
    }

    #[test]
    fn tables_are_nonempty_at_default_scale() {
        let w = generate(&WorldConfig::default());
        let t = surface_table(&w);
        assert!(t.aliases.len() > 50, "aliases: {}", t.aliases.len());
        assert!(t.redirects.len() > 10, "redirects: {}", t.redirects.len());
    }

    #[test]
    fn every_namesake_gets_a_distinct_redirect() {
        let w = generate(&WorldConfig::default());
        let t = surface_table(&w);
        // Find a duplicated label and check each of its entities has a
        // redirect carrying the label and resolving to it.
        let mut by_label: FxHashMap<&str, Vec<EntityId>> = FxHashMap::default();
        for e in &w.entities {
            by_label.entry(e.label.as_str()).or_default().push(e.id);
        }
        let (label, ids) = by_label
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .max_by_key(|(l, v)| (v.len(), *l))
            .expect("default world has ambiguity");
        for id in ids {
            let hit = t
                .redirects
                .iter()
                .find(|(s, e)| e == id && s.starts_with(label))
                .unwrap_or_else(|| panic!("no redirect for namesake {id:?} of {label:?}"));
            assert!(hit.0.contains('('), "disambiguator missing: {:?}", hit.0);
        }
    }

    #[test]
    fn redirect_surfaces_are_unique() {
        let w = generate(&WorldConfig::default());
        let t = surface_table(&w);
        let mut seen = FxHashSet::default();
        for (s, _) in &t.redirects {
            assert!(seen.insert(s.as_str()), "duplicate redirect surface {s:?}");
        }
    }

    #[test]
    fn initialism_redirects_are_globally_unique_composed_forms() {
        let w = generate(&WorldConfig::default());
        let t = surface_table(&w);
        let labels: FxHashSet<&str> = w.entities.iter().map(|e| e.label.as_str()).collect();
        for (s, id) in &t.redirects {
            if s.contains('(') {
                continue; // namesake redirect
            }
            // Composed initialism: multi-char, no lowercase, not a
            // label, and actually the initialism of its target.
            assert!(s.len() > 1 && !s.chars().any(|c| c.is_lowercase()), "{s:?}");
            assert!(!labels.contains(s.as_str()));
            assert_eq!(
                initialism(&w.entity(*id).label).as_deref(),
                Some(s.as_str())
            );
        }
    }
}
