//! The ground-truth world: entities and facts that every KG source and
//! every dataset derive from. The world itself is *never* visible to the
//! QA pipeline — only its renderings are.

use crate::schema::{EntityKind, RelId};
use kgstore::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Identifier of a world entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of a world fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FactId(pub u32);

/// A ground-truth entity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldEntity {
    /// Stable id.
    pub id: EntityId,
    /// Kind.
    pub kind: EntityKind,
    /// Canonical label. Deliberately *not* unique: a few percent of
    /// entities share labels to exercise disambiguation.
    pub label: String,
    /// Alternative surface forms.
    pub aliases: Vec<String>,
    /// Short description disambiguating same-label entities.
    pub description: String,
    /// Popularity in `(0, 1]`, Zipf-distributed by rank within kind.
    pub popularity: f64,
}

/// A ground-truth fact: `(subject, relation, object-entity)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorldFact {
    /// Stable id.
    pub id: FactId,
    /// Subject entity.
    pub s: EntityId,
    /// Relation.
    pub rel: RelId,
    /// Object entity.
    pub o: EntityId,
}

/// The complete ground truth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct World {
    /// All entities, indexed by `EntityId`.
    pub entities: Vec<WorldEntity>,
    /// All facts, indexed by `FactId`.
    pub facts: Vec<WorldFact>,
    #[serde(skip)]
    by_subject: FxHashMap<EntityId, Vec<FactId>>,
    #[serde(skip)]
    by_object: FxHashMap<EntityId, Vec<FactId>>,
    #[serde(skip)]
    by_kind: FxHashMap<EntityKind, Vec<EntityId>>,
}

impl World {
    /// Entity by id.
    #[inline]
    pub fn entity(&self, id: EntityId) -> &WorldEntity {
        &self.entities[id.0 as usize]
    }

    /// Fact by id.
    #[inline]
    pub fn fact(&self, id: FactId) -> &WorldFact {
        &self.facts[id.0 as usize]
    }

    /// Label of an entity (shorthand).
    pub fn label(&self, id: EntityId) -> &str {
        &self.entity(id).label
    }

    /// Add an entity (used by the generator).
    pub fn push_entity(&mut self, mut e: WorldEntity) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        e.id = id;
        self.by_kind.entry(e.kind).or_default().push(id);
        self.entities.push(e);
        id
    }

    /// Add a fact (used by the generator). Duplicate `(s, rel, o)` facts
    /// are the caller's responsibility to avoid.
    pub fn push_fact(&mut self, s: EntityId, rel: RelId, o: EntityId) -> FactId {
        let id = FactId(self.facts.len() as u32);
        self.facts.push(WorldFact { id, s, rel, o });
        self.by_subject.entry(s).or_default().push(id);
        self.by_object.entry(o).or_default().push(id);
        id
    }

    /// All facts with subject `s`.
    pub fn facts_of(&self, s: EntityId) -> impl Iterator<Item = &WorldFact> {
        self.by_subject
            .get(&s)
            .into_iter()
            .flatten()
            .map(|&f| self.fact(f))
    }

    /// All facts with subject `s` and relation `rel`.
    pub fn objects_of(&self, s: EntityId, rel: RelId) -> Vec<EntityId> {
        self.facts_of(s)
            .filter(|f| f.rel == rel)
            .map(|f| f.o)
            .collect()
    }

    /// All facts with object `o`.
    pub fn facts_with_object(&self, o: EntityId) -> impl Iterator<Item = &WorldFact> {
        self.by_object
            .get(&o)
            .into_iter()
            .flatten()
            .map(|&f| self.fact(f))
    }

    /// Subjects `s` such that `(s, rel, o)` holds.
    pub fn subjects_with(&self, rel: RelId, o: EntityId) -> Vec<EntityId> {
        self.facts_with_object(o)
            .filter(|f| f.rel == rel)
            .map(|f| f.s)
            .collect()
    }

    /// All entities of a kind.
    pub fn entities_of_kind(&self, kind: EntityKind) -> &[EntityId] {
        self.by_kind.get(&kind).map_or(&[], |v| v)
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Whether a fact's relation is "recent" knowledge.
    pub fn is_recent(&self, f: &WorldFact) -> bool {
        f.rel.spec().recent
    }

    /// Rebuild the skipped indexes after deserialization.
    pub fn rebuild(&mut self) {
        self.by_subject.clear();
        self.by_object.clear();
        self.by_kind.clear();
        for e in &self.entities {
            self.by_kind.entry(e.kind).or_default().push(e.id);
        }
        for f in &self.facts {
            self.by_subject.entry(f.s).or_default().push(f.id);
            self.by_object.entry(f.o).or_default().push(f.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::rel_by_name;

    fn tiny_world() -> World {
        let mut w = World::default();
        let yao = w.push_entity(WorldEntity {
            id: EntityId(0),
            kind: EntityKind::Person,
            label: "Yao Ming".into(),
            aliases: vec![],
            description: "basketball player".into(),
            popularity: 0.9,
        });
        let shanghai = w.push_entity(WorldEntity {
            id: EntityId(0),
            kind: EntityKind::City,
            label: "Shanghai".into(),
            aliases: vec![],
            description: "city".into(),
            popularity: 0.8,
        });
        let rel = rel_by_name("place_of_birth").unwrap();
        w.push_fact(yao, rel, shanghai);
        w
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let w = tiny_world();
        assert_eq!(w.entities[0].id, EntityId(0));
        assert_eq!(w.entities[1].id, EntityId(1));
        assert_eq!(w.facts[0].id, FactId(0));
    }

    #[test]
    fn fact_indexes_work() {
        let w = tiny_world();
        let rel = rel_by_name("place_of_birth").unwrap();
        assert_eq!(w.objects_of(EntityId(0), rel), vec![EntityId(1)]);
        assert_eq!(w.subjects_with(rel, EntityId(1)), vec![EntityId(0)]);
        assert!(w.objects_of(EntityId(1), rel).is_empty());
    }

    #[test]
    fn kind_index_works() {
        let w = tiny_world();
        assert_eq!(w.entities_of_kind(EntityKind::Person), &[EntityId(0)]);
        assert_eq!(w.entities_of_kind(EntityKind::City), &[EntityId(1)]);
        assert!(w.entities_of_kind(EntityKind::River).is_empty());
    }

    #[test]
    fn rebuild_restores_indexes() {
        let w = tiny_world();
        let json = serde_json::to_string(&w).unwrap();
        let mut back: World = serde_json::from_str(&json).unwrap();
        back.rebuild();
        let rel = rel_by_name("place_of_birth").unwrap();
        assert_eq!(back.objects_of(EntityId(0), rel), vec![EntityId(1)]);
    }
}
