//! # worldgen — synthetic world, KG sources, and QA datasets
//!
//! Offline stand-ins for the data the paper evaluates on. A seeded
//! ground-truth [`world::World`] (entities with Zipf popularity,
//! deliberately ambiguous labels, and typed facts) is rendered into
//! imperfect, schema-flavoured KG sources ([`kgderive`]: Wikidata-like
//! and Freebase-like, with coverage gaps, mediator nodes, and recency
//! differences) and into three benchmarks ([`datasets`]:
//! SimpleQuestions-like, QALD-10-like, Nature-Questions-like).
//!
//! The pipeline under evaluation never sees the world — only question
//! text and a KG source. The simulated LLM sees question *intent* (its
//! language understanding) but recalls facts through a corrupted memory,
//! never through gold answers.

#![warn(missing_docs)]

pub mod alias;
pub mod datasets;
pub mod gen;
pub mod kgderive;
pub mod names;
pub mod schema;
pub mod world;

pub use alias::{surface_table, SurfaceTable};
pub use datasets::{Dataset, DatasetKind, Gold, Intent, Question};
pub use gen::{generate, WorldConfig};
pub use kgderive::{derive, entity_sid, SourceConfig};
pub use schema::{all_rel_ids, rel_by_name, EntityKind, RelId, RelationSpec};
pub use world::{EntityId, FactId, World, WorldEntity, WorldFact};
