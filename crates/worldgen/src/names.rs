//! Synthetic-but-plausible name generation per entity kind.
//!
//! Names are composed from component pools; the generator draws random
//! combinations and dedups, so every entity gets a unique base label
//! (label *sharing* for ambiguity is injected later, deliberately).

use crate::schema::EntityKind;
use kgstore::hash::FxHashSet;
use rand::rngs::StdRng;
use rand::Rng;

const FIRST: &[&str] = &[
    "Alan", "Maria", "Chen", "Amara", "Viktor", "Yuki", "Omar", "Ingrid", "Ravi", "Sofia",
    "Dmitri", "Leila", "Hugo", "Mei", "Tariq", "Anya", "Paulo", "Nadia", "Kofi", "Elena", "Marcus",
    "Priya", "Jonas", "Fatima", "Andre", "Sana", "Felix", "Rosa", "Iker", "Hana", "Boris",
    "Carmen", "Niko", "Aisha", "Lars", "Vera", "Emil", "Dalia", "Rafael", "Mira",
];

const LAST: &[&str] = &[
    "Turing",
    "Silva",
    "Wei",
    "Okafor",
    "Petrov",
    "Tanaka",
    "Haddad",
    "Larsen",
    "Iyer",
    "Moretti",
    "Volkov",
    "Farsi",
    "Schmidt",
    "Ling",
    "Rahman",
    "Kovacs",
    "Costa",
    "Haddix",
    "Mensah",
    "Novak",
    "Grant",
    "Sharma",
    "Berg",
    "Alvi",
    "Duarte",
    "Qureshi",
    "Stein",
    "Vidal",
    "Etxeberria",
    "Sato",
    "Orlov",
    "Reyes",
    "Makinen",
    "Diallo",
    "Holm",
    "Sokolova",
    "Brandt",
    "Amari",
    "Pinto",
    "Lindqvist",
];

const CITY_A: &[&str] = &[
    "Port", "New", "San", "East", "West", "North", "South", "Lake", "Fort", "Mount", "Glen", "Ash",
    "Oak", "River", "Stone", "Gold", "Silver", "Clear", "Green", "High",
];
const CITY_B: &[&str] = &[
    "haven", "ford", "ville", "burg", "field", "bridge", "dale", "mouth", "crest", "view", "wick",
    "stead", "holm", "gate", "port", "mere", "shore", "cliff",
];

const COUNTRY_A: &[&str] = &[
    "Nor", "Vel", "Zan", "Kor", "Al", "Bel", "Dor", "Est", "Far", "Gal", "Hel", "Ist", "Jor",
    "Kal", "Lor", "Mar", "Nev", "Ost", "Pel", "Quar", "Ros", "Sel", "Tor", "Ul", "Var", "Wes",
    "Xan", "Yor", "Zel", "Bra",
];
const COUNTRY_B: &[&str] = &[
    "donia", "mark", "land", "ia", "avia", "istan", "ora", "una", "esia", "aria",
];

const RIVER_A: &[&str] = &[
    "Silver", "Long", "Great", "Black", "White", "Red", "Blue", "Swift", "Cold", "Deep", "Winding",
    "Broad", "Stony", "Misty", "Amber", "Iron", "Jade", "Copper", "Golden", "Wild",
];

const RANGE_A: &[&str] = &[
    "Thunder", "Iron", "Cloud", "Storm", "Granite", "Frost", "Shadow", "Crystal", "Ember",
    "Silver", "Eagle", "Dragon", "Titan", "Aurora", "Obsidian", "Summit", "Boreal", "Zenith",
];

const COMPANY_A: &[&str] = &[
    "Tekna", "Novex", "Quantia", "Vertex", "Solaris", "Aperion", "Lumina", "Cryon", "Helix",
    "Zephyr", "Orion", "Pinnacle", "Nimbus", "Vantage", "Keystone", "Atlas", "Horizon", "Polaris",
    "Synthex", "Meridian", "Cobalt", "Arcadia", "Vireo", "Stratus", "Onyx",
];
const COMPANY_B: &[&str] = &[
    "Systems",
    "Labs",
    "Dynamics",
    "Industries",
    "Technologies",
    "Works",
    "Group",
    "Computing",
    "Robotics",
    "Media",
    "Energy",
    "Motors",
];

const DEVICE_A: &[&str] = &[
    "Nova", "Pulse", "Aero", "Vision", "Echo", "Flux", "Zen", "Orbit", "Spark", "Wave", "Prism",
    "Core", "Halo", "Quark", "Vector",
];
const DEVICE_B: &[&str] = &[
    "Pro", "Max", "Air", "Ultra", "One", "X", "Mini", "Plus", "Go", "Neo",
];

const CHIP_A: &[&str] = &[
    "Axion", "Corex", "Nexar", "Photon", "Tessera", "Vulcan", "Argon", "Krait", "Zircon", "Helio",
];

const UNI_A: &[&str] = &[
    "Northfield",
    "Easton",
    "Westbrook",
    "Kingsford",
    "Clearwater",
    "Ashford",
    "Briarton",
    "Langdale",
    "Mirefield",
    "Stonebridge",
    "Harrowgate",
    "Eldermoor",
    "Fairhaven",
    "Graythorn",
    "Oakmont",
    "Winslow",
    "Calder",
    "Penrose",
    "Thornbury",
    "Veldt",
];

const FILM_A: &[&str] = &[
    "The Last",
    "A Distant",
    "The Silent",
    "Beyond the",
    "Children of",
    "The Burning",
    "Shadows of",
    "The Glass",
    "Whispers of",
    "The Iron",
    "Echoes of",
    "The Hidden",
    "Return to",
    "The Broken",
    "Songs of",
    "The Crimson",
];
const FILM_B: &[&str] = &[
    "Horizon", "Garden", "Empire", "River", "Winter", "Machine", "Harbor", "Mountain", "Dream",
    "Voyage", "Kingdom", "Lantern", "Mirror", "Storm", "Orchard",
];

const BOOK_B: &[&str] = &[
    "Chronicle",
    "Testament",
    "Atlas",
    "Manifesto",
    "Memoir",
    "Paradox",
    "Equation",
    "Labyrinth",
    "Cartography",
    "Symphony",
    "Herbarium",
    "Almanac",
];

const BAND_A: &[&str] = &[
    "Velvet", "Neon", "Crimson", "Electric", "Midnight", "Paper", "Static", "Lunar", "Hollow",
    "Golden", "Arctic", "Wild", "Broken", "Silver", "Phantom",
];
const BAND_B: &[&str] = &[
    "Foxes",
    "Parade",
    "Monarchs",
    "Cascade",
    "Harbors",
    "Satellites",
    "Wolves",
    "Gardens",
    "Engines",
    "Mirrors",
    "Tides",
    "Sparrows",
];

const GENRES: &[&str] = &[
    "jazz",
    "soul music",
    "funk",
    "blues",
    "pop music",
    "rhythm and blues",
    "folk rock",
    "pop rock",
    "indie rock",
    "electronic music",
    "hip hop",
    "classical music",
    "ambient",
    "science fiction",
    "drama",
    "thriller",
    "documentary",
    "comedy",
    "film noir",
    "western",
];

const AWARDS: &[&str] = &[
    "Meridian Prize",
    "Golden Laurel Award",
    "Aster Medal",
    "Polaris Honor",
    "Caldera Prize",
    "Luminary Award",
    "Vanguard Medal",
    "Zenith Prize",
    "Argent Cross",
    "Horizon Fellowship",
    "Corona Award",
    "Beacon Prize",
    "Halcyon Medal",
    "Summit Laurel",
    "Meristem Prize",
];

const FIELDS: &[&str] = &[
    "artificial intelligence",
    "quantum computing",
    "molecular biology",
    "renewable energy",
    "deep sea exploration",
    "astrophysics",
    "cryptography",
    "neuroscience",
    "robotics",
    "climate modeling",
    "synthetic chemistry",
    "computational linguistics",
];

const OCCUPATIONS: &[&str] = &[
    "singer",
    "singer-songwriter",
    "record producer",
    "pianist",
    "actor",
    "film director",
    "novelist",
    "physicist",
    "engineer",
    "basketball player",
    "painter",
    "architect",
    "chef",
    "journalist",
    "mathematician",
    "composer",
    "biologist",
    "chemist",
    "historian",
    "economist",
];

const SPORTS: &[&str] = &[
    "basketball",
    "football",
    "tennis",
    "cricket",
    "hockey",
    "baseball",
    "volleyball",
    "rugby",
    "badminton",
    "table tennis",
    "handball",
    "golf",
];

const TEAM_B: &[&str] = &[
    "Rockets",
    "Mariners",
    "Falcons",
    "Comets",
    "Titans",
    "Rangers",
    "Sharks",
    "Wolves",
    "Pioneers",
    "Dragons",
    "Knights",
    "Hurricanes",
    "Bisons",
    "Ravens",
    "Stallions",
];

const CONTINENTS: &[&str] = &[
    "Oresia", "Valtara", "Meridia", "Borealis", "Austrane", "Zephyria",
];

const LAKE_B: &[&str] = &[
    "Mirror", "Crater", "Crescent", "Azure", "Glacier", "Willow", "Falcon", "Boulder", "Heron",
    "Juniper", "Larch", "Osprey", "Pike", "Quill", "Reed",
];

const MOUNTAIN_B: &[&str] = &[
    "Kestrel",
    "Vortex",
    "Sentinel",
    "Colossus",
    "Warden",
    "Pinnacle",
    "Spire",
    "Monarch",
    "Guardian",
    "Leviathan",
    "Basilisk",
    "Gryphon",
    "Harbinger",
    "Oracle",
    "Paragon",
];

/// Draw a fresh unique name of the given kind.
pub fn fresh_name(kind: EntityKind, rng: &mut StdRng, used: &mut FxHashSet<String>) -> String {
    fresh_name_ranked(kind, 0, rng, used)
}

/// [`fresh_name`] with the caller's per-kind rank: ranks at or beyond
/// [`composed_space`] skip the (provably futile at that point) rejection
/// loop and go straight to the numbered fallback. Below the space the
/// draw sequence is identical to [`fresh_name`], so small worlds keep
/// their exact historical names while million-entity worlds stay
/// O(1) per name instead of burning 1000 rejected draws each.
pub fn fresh_name_ranked(
    kind: EntityKind,
    rank: usize,
    rng: &mut StdRng,
    used: &mut FxHashSet<String>,
) -> String {
    if rank < composed_space(kind) {
        for attempt in 0..1000 {
            let name = compose(kind, rng, attempt);
            if used.insert(name.clone()) {
                return name;
            }
        }
    }
    // Fall back to an explicitly numbered name; guaranteed unique.
    let mut i = used.len();
    loop {
        let name = format!("{} {}", compose(kind, rng, 0), i);
        if used.insert(name.clone()) {
            return name;
        }
        i += 1;
    }
}

/// Number of distinct names [`fresh_name`]'s rejection loop can ever
/// produce for a kind: the raw pool combinations times the six suffix
/// variants (bare plus "II"–"VI") the collision path appends. Beyond
/// this many same-kind entities, composition cannot yield a fresh name.
pub fn composed_space(kind: EntityKind) -> usize {
    let raw = match kind {
        EntityKind::Person => FIRST.len() * LAST.len(),
        EntityKind::City => CITY_A.len() * CITY_B.len(),
        EntityKind::Country => COUNTRY_A.len() * COUNTRY_B.len(),
        EntityKind::Continent => CONTINENTS.len(),
        EntityKind::River => RIVER_A.len(),
        EntityKind::MountainRange => RANGE_A.len(),
        EntityKind::Lake => LAKE_B.len(),
        EntityKind::Mountain => MOUNTAIN_B.len(),
        EntityKind::Company => COMPANY_A.len() * COMPANY_B.len(),
        EntityKind::Device => COMPANY_A.len() * DEVICE_A.len() * DEVICE_B.len(),
        EntityKind::Chip => CHIP_A.len() * 9,
        EntityKind::University => UNI_A.len(),
        EntityKind::Film => FILM_A.len() * FILM_B.len(),
        EntityKind::Book => FILM_B.len() * BOOK_B.len(),
        EntityKind::Band => BAND_A.len() * BAND_B.len(),
        EntityKind::Genre => GENRES.len(),
        EntityKind::Award => AWARDS.len(),
        EntityKind::Field => FIELDS.len(),
        EntityKind::Occupation => OCCUPATIONS.len(),
        EntityKind::Sport => SPORTS.len(),
        EntityKind::Team => CITY_A.len() * TEAM_B.len(),
    };
    raw * 6
}

fn pick<'a>(pool: &[&'a str], rng: &mut StdRng) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

fn compose(kind: EntityKind, rng: &mut StdRng, attempt: usize) -> String {
    // After many collisions, append a roman-ish numeral to widen the space.
    let suffix = if attempt > 400 {
        format!(" {}", ["II", "III", "IV", "V", "VI"][attempt % 5])
    } else {
        String::new()
    };
    let base = match kind {
        EntityKind::Person => format!("{} {}", pick(FIRST, rng), pick(LAST, rng)),
        EntityKind::City => format!("{}{}", pick(CITY_A, rng), pick(CITY_B, rng)),
        EntityKind::Country => format!("{}{}", pick(COUNTRY_A, rng), pick(COUNTRY_B, rng)),
        EntityKind::Continent => pick(CONTINENTS, rng).to_string(),
        EntityKind::River => format!("{} River", pick(RIVER_A, rng)),
        EntityKind::MountainRange => format!("{} Range", pick(RANGE_A, rng)),
        EntityKind::Lake => format!("Lake {}", pick(LAKE_B, rng)),
        EntityKind::Mountain => format!("Mount {}", pick(MOUNTAIN_B, rng)),
        EntityKind::Company => format!("{} {}", pick(COMPANY_A, rng), pick(COMPANY_B, rng)),
        EntityKind::Device => format!(
            "{} {} {}",
            pick(COMPANY_A, rng),
            pick(DEVICE_A, rng),
            pick(DEVICE_B, rng)
        ),
        EntityKind::Chip => format!("{} {}", pick(CHIP_A, rng), rng.random_range(1..10)),
        EntityKind::University => format!("{} University", pick(UNI_A, rng)),
        EntityKind::Film => format!("{} {}", pick(FILM_A, rng), pick(FILM_B, rng)),
        EntityKind::Book => format!("The {} {}", pick(FILM_B, rng), pick(BOOK_B, rng)),
        EntityKind::Band => format!("{} {}", pick(BAND_A, rng), pick(BAND_B, rng)),
        EntityKind::Genre => pick(GENRES, rng).to_string(),
        EntityKind::Award => pick(AWARDS, rng).to_string(),
        EntityKind::Field => pick(FIELDS, rng).to_string(),
        EntityKind::Occupation => pick(OCCUPATIONS, rng).to_string(),
        EntityKind::Sport => pick(SPORTS, rng).to_string(),
        EntityKind::Team => format!("{} {}", pick(CITY_A, rng), pick(TEAM_B, rng)),
    };
    format!("{base}{suffix}")
}

/// Maximum sensible entity count per kind (bounded pools like genres cap
/// out; the generator clamps its requests to this).
pub fn pool_capacity(kind: EntityKind) -> usize {
    match kind {
        EntityKind::Continent => CONTINENTS.len(),
        EntityKind::Genre => GENRES.len(),
        EntityKind::Award => AWARDS.len(),
        EntityKind::Field => FIELDS.len(),
        EntityKind::Occupation => OCCUPATIONS.len(),
        EntityKind::Sport => SPORTS.len(),
        _ => usize::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_unique() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut used = FxHashSet::default();
        let names: Vec<String> = (0..300)
            .map(|_| fresh_name(EntityKind::Person, &mut rng, &mut used))
            .collect();
        let set: FxHashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn names_are_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut used = FxHashSet::default();
            (0..20)
                .map(|_| fresh_name(EntityKind::City, &mut rng, &mut used))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn bounded_pools_report_capacity() {
        assert_eq!(pool_capacity(EntityKind::Continent), 6);
        assert!(pool_capacity(EntityKind::Person) > 1000);
    }

    #[test]
    fn exhausted_pool_falls_back_to_numbering() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut used = FxHashSet::default();
        // Continents pool has 6 names; asking for 10 must still succeed.
        let names: Vec<String> = (0..10)
            .map(|_| fresh_name(EntityKind::Continent, &mut rng, &mut used))
            .collect();
        let set: FxHashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn ranked_draws_match_unranked_below_the_space() {
        // Ranks under composed_space take the identical rejection loop,
        // so a rank-aware caller reproduces the historical names.
        let run = |ranked: bool| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut used = FxHashSet::default();
            (0..300)
                .map(|rank| {
                    if ranked {
                        fresh_name_ranked(EntityKind::Person, rank, &mut rng, &mut used)
                    } else {
                        fresh_name(EntityKind::Person, &mut rng, &mut used)
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn ranks_beyond_the_space_stay_unique_and_fast() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut used = FxHashSet::default();
        let space = composed_space(EntityKind::River);
        let names: Vec<String> = (0..space + 500)
            .map(|rank| fresh_name_ranked(EntityKind::River, rank, &mut rng, &mut used))
            .collect();
        let set: FxHashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn composed_space_covers_default_counts() {
        // Every kind's scale-1.0 entity count sits strictly inside the
        // composed space — the fast path is untriggered, so the default
        // world's names are unchanged by rank-aware drawing.
        assert_eq!(composed_space(EntityKind::Person), 40 * 40 * 6);
        assert_eq!(composed_space(EntityKind::River), 20 * 6);
        assert_eq!(composed_space(EntityKind::Continent), 36);
    }

    #[test]
    fn kind_shapes_look_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut used = FxHashSet::default();
        assert!(fresh_name(EntityKind::Lake, &mut rng, &mut used).starts_with("Lake "));
        assert!(fresh_name(EntityKind::Mountain, &mut rng, &mut used).starts_with("Mount "));
        assert!(fresh_name(EntityKind::University, &mut rng, &mut used).ends_with("University"));
    }
}
