//! Derive concrete KG *sources* from the ground-truth world.
//!
//! A source is an imperfect, schema-flavoured rendering: it covers only a
//! fraction of the world's facts, names entities with opaque ids, and
//! verbalises relations its own way. The Wikidata-like source renders
//! some relations through mediator ("statement") nodes — one Freebase
//! hop becomes two Wikidata hops, the exact mismatch the paper blames
//! for the smaller SimpleQuestions gain in Table 3.

use crate::schema::EntityKind;
use crate::world::{EntityId, World};
use kgstore::hash::{mix2, stable_str_hash, unit_f64};
use kgstore::{EntityMeta, KgSource, SchemaStyle};
use serde::{Deserialize, Serialize};

/// Knobs controlling how a source renders the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceConfig {
    /// Source name (also salts the coverage hash).
    pub name: String,
    /// Schema family.
    pub style: SchemaStyle,
    /// Probability an ordinary world fact is present.
    pub coverage: f64,
    /// Probability a *recent* fact is present (timeliness: high for the
    /// Wikidata-like source, zero for the frozen FB2M-like subset).
    pub recent_coverage: f64,
    /// Coverage of *multi-valued* facts (list membership). The FB2M
    /// subset is entity-centric and sparse on n-ary enumerations, while
    /// Wikidata's lists are comparatively complete — the root of the
    /// Table 3 asymmetry on open-ended questions.
    pub multivalue_coverage: f64,
    /// Whether entity aliases are registered as surface forms.
    pub include_aliases: bool,
    /// Whether `wikidata_mediated` relations go through mediator nodes.
    pub mediate_flagged: bool,
    /// Whether to add `description` / `instance of` triples per entity.
    pub include_descriptions: bool,
}

impl SourceConfig {
    /// The simulated-Wikidata defaults: broad, current, mediated.
    pub fn wikidata() -> Self {
        Self {
            name: "wikidata-sim".into(),
            style: SchemaStyle::WikidataLike,
            coverage: 0.87,
            recent_coverage: 0.92,
            multivalue_coverage: 0.87,
            include_aliases: true,
            mediate_flagged: true,
            include_descriptions: true,
        }
    }

    /// The simulated-FB2M defaults: strong on classic single-hop facts,
    /// frozen in time (no recent knowledge), no mediators.
    pub fn freebase() -> Self {
        Self {
            name: "freebase-sim".into(),
            style: SchemaStyle::FreebaseLike,
            coverage: 0.94,
            recent_coverage: 0.0,
            multivalue_coverage: 0.55,
            include_aliases: false,
            mediate_flagged: false,
            include_descriptions: true,
        }
    }
}

/// Opaque id of an entity in a given schema style.
pub fn entity_sid(style: SchemaStyle, id: EntityId) -> String {
    match style {
        SchemaStyle::WikidataLike => format!("Q{}", 1000 + id.0),
        SchemaStyle::FreebaseLike => format!("/m/0{:05x}", id.0),
    }
}

/// Whether `fact` is covered by the source (stable in the source name).
pub fn fact_covered(cfg: &SourceConfig, world: &World, fact_idx: usize) -> bool {
    let f = &world.facts[fact_idx];
    let spec = f.rel.spec();
    let p = if spec.recent {
        cfg.recent_coverage
    } else if spec.max_objects > 1 {
        cfg.multivalue_coverage
    } else {
        cfg.coverage
    };
    let h = mix2(stable_str_hash(&cfg.name), f.id.0 as u64);
    unit_f64(h) < p
}

/// Render the world into a [`KgSource`].
pub fn derive(world: &World, cfg: &SourceConfig) -> KgSource {
    let mut src = KgSource::new(cfg.name.clone(), cfg.style);
    let mut touched = vec![false; world.entity_count()];

    for (idx, f) in world.facts.iter().enumerate() {
        if !fact_covered(cfg, world, idx) {
            continue;
        }
        let spec = f.rel.spec();
        let s_id = entity_sid(cfg.style, f.s);
        let o_id = entity_sid(cfg.style, f.o);
        let pred = match cfg.style {
            SchemaStyle::WikidataLike => spec.wikidata.to_string(),
            SchemaStyle::FreebaseLike => spec.freebase.to_string(),
        };
        touched[f.s.0 as usize] = true;
        touched[f.o.0 as usize] = true;
        if cfg.mediate_flagged && spec.wikidata_mediated {
            // Two-hop rendering through an opaque statement node.
            let m_id = format!("S{}", f.id.0);
            src.add_entity(
                &m_id,
                EntityMeta {
                    label: format!("statement {}", f.id.0),
                    aliases: vec![],
                    description: "statement node".into(),
                    popularity: 0.0,
                },
            );
            src.add_fact(&s_id, &pred, &m_id);
            src.add_fact(&m_id, "statement is about", &o_id);
        } else {
            src.add_fact(&s_id, &pred, &o_id);
        }
    }

    // Register metadata (and optional description triples) for every
    // entity that appears in at least one covered fact.
    let (desc_pred, type_pred) = match cfg.style {
        SchemaStyle::WikidataLike => ("description", "instance of"),
        SchemaStyle::FreebaseLike => ("/common/topic/description", "/type/object/type"),
    };
    for (i, e) in world.entities.iter().enumerate() {
        if !touched[i] {
            continue;
        }
        let sid = entity_sid(cfg.style, e.id);
        src.add_entity(
            &sid,
            EntityMeta {
                label: e.label.clone(),
                aliases: if cfg.include_aliases {
                    e.aliases.clone()
                } else {
                    vec![]
                },
                description: e.description.clone(),
                popularity: e.popularity,
            },
        );
        if cfg.include_descriptions {
            src.add_fact(&sid, desc_pred, &e.description);
            src.add_fact(&sid, type_pred, e.kind.noun());
        }
    }

    // Explicit redirect surfaces for ambiguous/composed labels — only
    // for alias-bearing sources, and only for entities the coverage
    // draw actually touched. Redirects register metadata, never
    // triples, so the rendered corpus is unchanged.
    if cfg.include_aliases {
        let table = crate::alias::surface_table(world);
        for (surface, id) in &table.redirects {
            if touched[id.0 as usize] {
                src.add_redirect(surface, &entity_sid(cfg.style, *id));
            }
        }
    }
    src
}

/// Count world entities of a kind present in the source (test helper and
/// report statistic).
pub fn covered_entities(world: &World, src: &KgSource, kind: EntityKind) -> usize {
    world
        .entities_of_kind(kind)
        .iter()
        .filter(|&&id| src.store.atoms().get(&entity_sid(src.style, id)).is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, WorldConfig};
    use crate::schema::rel_by_name;

    fn world() -> World {
        generate(&WorldConfig {
            scale: 0.4,
            ..Default::default()
        })
    }

    #[test]
    fn derivation_is_deterministic() {
        let w = world();
        let a = derive(&w, &SourceConfig::wikidata());
        let b = derive(&w, &SourceConfig::wikidata());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn coverage_removes_some_facts() {
        let w = world();
        let full = derive(
            &w,
            &SourceConfig {
                coverage: 1.0,
                recent_coverage: 1.0,
                ..SourceConfig::wikidata()
            },
        );
        let partial = derive(&w, &SourceConfig::wikidata());
        assert!(partial.len() < full.len());
    }

    #[test]
    fn freebase_has_no_recent_facts() {
        let w = world();
        let fb = derive(&w, &SourceConfig::freebase());
        let chips = rel_by_name("uses_chip").unwrap().spec();
        let pred = fb.store.atoms().get(chips.freebase);
        assert!(
            pred.is_none(),
            "frozen source must not contain recent relations"
        );
    }

    #[test]
    fn wikidata_mediates_flagged_relations() {
        let w = world();
        let wd = derive(&w, &SourceConfig::wikidata());
        let employer = rel_by_name("employer").unwrap().spec();
        let pred = wd.store.atoms().get(employer.wikidata);
        if let Some(p) = pred {
            // Every employer edge must point at a statement node.
            for t in wd.store.by_predicate(p) {
                let o = wd.store.resolve(t.o);
                assert!(o.starts_with('S'), "expected statement node, got {o}");
            }
        }
        assert!(
            wd.store.atoms().get("statement is about").is_some(),
            "mediator second hops missing"
        );
    }

    #[test]
    fn freebase_renders_flagged_relations_directly() {
        let w = world();
        let fb = derive(&w, &SourceConfig::freebase());
        let employer = rel_by_name("employer").unwrap().spec();
        let p = fb
            .store
            .atoms()
            .get(employer.freebase)
            .expect("employer facts");
        for t in fb.store.by_predicate(p) {
            let o = fb.store.resolve(t.o);
            assert!(
                o.starts_with("/m/"),
                "freebase object must be an entity id, got {o}"
            );
        }
    }

    #[test]
    fn entity_metadata_registered_with_labels() {
        let w = world();
        let wd = derive(&w, &SourceConfig::wikidata());
        // Find some world entity present in the source and check its label.
        let present = w
            .entities
            .iter()
            .find(|e| {
                wd.store
                    .atoms()
                    .get(&entity_sid(SchemaStyle::WikidataLike, e.id))
                    .is_some()
            })
            .expect("some entity present");
        let cands = wd.surface_candidates(&present.label);
        assert!(!cands.is_empty());
    }

    #[test]
    fn sid_formats() {
        assert_eq!(entity_sid(SchemaStyle::WikidataLike, EntityId(5)), "Q1005");
        assert_eq!(
            entity_sid(SchemaStyle::FreebaseLike, EntityId(5)),
            "/m/000005"
        );
    }

    #[test]
    fn redirects_registered_for_touched_namesakes_only() {
        let w = world();
        let wd = derive(&w, &SourceConfig::wikidata());
        let fb = derive(&w, &SourceConfig::freebase());
        // Alias-bearing source carries redirects; the frozen FB2M-like
        // subset (include_aliases = false) carries none.
        assert!(wd.meta.redirect_count() > 0, "wikidata-sim has redirects");
        assert_eq!(fb.meta.redirect_count(), 0, "freebase-sim has none");
        // Every redirect resolves to a registered entity whose label or
        // initialism the surface is composed from, and the triple count
        // matches a derivation without redirects (corpus unchanged).
        for (surface, atom) in wd.meta.redirects_sorted() {
            let meta = wd.meta.get(atom).expect("redirect target registered");
            let label = meta.label.to_lowercase();
            assert!(
                surface.starts_with(&label) || surface.len() < label.len(),
                "surface {surface:?} unrelated to label {label:?}"
            );
        }
        let again = derive(&w, &SourceConfig::wikidata());
        assert_eq!(wd.len(), again.len());
    }

    #[test]
    fn redirect_corpus_is_unchanged_and_deterministic() {
        let w = world();
        let a = derive(&w, &SourceConfig::wikidata());
        let b = derive(&w, &SourceConfig::wikidata());
        assert_eq!(a.meta.redirects_sorted(), b.meta.redirects_sorted());
        // Redirects add metadata only: same triples as a hypothetical
        // redirect-free derivation (checked by count + spot samples).
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn aliases_only_when_configured() {
        let w = world();
        let wd = derive(&w, &SourceConfig::wikidata());
        let fb = derive(&w, &SourceConfig::freebase());
        let aliased = w
            .entities
            .iter()
            .find(|e| !e.aliases.is_empty())
            .expect("world has aliases");
        // The alias resolves in wikidata (if the entity is covered), and
        // never resolves in freebase.
        let wd_hit = !wd.surface_candidates(&aliased.aliases[0]).is_empty();
        let fb_hit = !fb.surface_candidates(&aliased.aliases[0]).is_empty();
        if wd
            .store
            .atoms()
            .get(&entity_sid(SchemaStyle::WikidataLike, aliased.id))
            .is_some()
        {
            assert!(wd_hit);
        }
        assert!(!fb_hit);
    }
}
