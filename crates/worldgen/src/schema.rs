//! The world schema: entity kinds and the canonical relation vocabulary,
//! with per-source verbalisations (Wikidata-like property names vs
//! Freebase-like path ids) and question templates.

use serde::{Deserialize, Serialize};

/// What kind of thing an entity is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum EntityKind {
    Person,
    City,
    Country,
    Continent,
    River,
    MountainRange,
    Lake,
    Mountain,
    Company,
    Device,
    Chip,
    University,
    Film,
    Book,
    Band,
    Genre,
    Award,
    Field,
    Occupation,
    Sport,
    Team,
}

impl EntityKind {
    /// All kinds, in a stable order.
    pub const ALL: [EntityKind; 21] = [
        EntityKind::Person,
        EntityKind::City,
        EntityKind::Country,
        EntityKind::Continent,
        EntityKind::River,
        EntityKind::MountainRange,
        EntityKind::Lake,
        EntityKind::Mountain,
        EntityKind::Company,
        EntityKind::Device,
        EntityKind::Chip,
        EntityKind::University,
        EntityKind::Film,
        EntityKind::Book,
        EntityKind::Band,
        EntityKind::Genre,
        EntityKind::Award,
        EntityKind::Field,
        EntityKind::Occupation,
        EntityKind::Sport,
        EntityKind::Team,
    ];

    /// Label used in generated descriptions ("Chinese basketball player").
    pub fn noun(self) -> &'static str {
        match self {
            EntityKind::Person => "person",
            EntityKind::City => "city",
            EntityKind::Country => "country",
            EntityKind::Continent => "continent",
            EntityKind::River => "river",
            EntityKind::MountainRange => "mountain range",
            EntityKind::Lake => "lake",
            EntityKind::Mountain => "mountain",
            EntityKind::Company => "company",
            EntityKind::Device => "device",
            EntityKind::Chip => "chip",
            EntityKind::University => "university",
            EntityKind::Film => "film",
            EntityKind::Book => "book",
            EntityKind::Band => "band",
            EntityKind::Genre => "genre",
            EntityKind::Award => "award",
            EntityKind::Field => "field",
            EntityKind::Occupation => "occupation",
            EntityKind::Sport => "sport",
            EntityKind::Team => "team",
        }
    }

    /// Neo4j-ish label for Cypher generation (`Person`, `MountainRange`).
    pub fn cypher_label(self) -> &'static str {
        match self {
            EntityKind::Person => "Person",
            EntityKind::City => "City",
            EntityKind::Country => "Country",
            EntityKind::Continent => "Continent",
            EntityKind::River => "River",
            EntityKind::MountainRange => "MountainRange",
            EntityKind::Lake => "Lake",
            EntityKind::Mountain => "Mountain",
            EntityKind::Company => "Company",
            EntityKind::Device => "Device",
            EntityKind::Chip => "Chip",
            EntityKind::University => "University",
            EntityKind::Film => "Film",
            EntityKind::Book => "Book",
            EntityKind::Band => "Band",
            EntityKind::Genre => "Genre",
            EntityKind::Award => "Award",
            EntityKind::Field => "Field",
            EntityKind::Occupation => "Occupation",
            EntityKind::Sport => "Sport",
            EntityKind::Team => "Team",
        }
    }
}

/// Index into [`RELATIONS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u16);

impl RelId {
    /// The spec this id points to.
    pub fn spec(self) -> &'static RelationSpec {
        &RELATIONS[self.0 as usize]
    }
}

/// Declarative description of one canonical relation.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Canonical snake_case name (stable id).
    pub name: &'static str,
    /// Subject kind.
    pub subject: EntityKind,
    /// Object kind.
    pub object: EntityKind,
    /// Wikidata-style property label.
    pub wikidata: &'static str,
    /// Freebase-style property path.
    pub freebase: &'static str,
    /// Neo4j-style relationship type (what pseudo-graphs use).
    pub cypher: &'static str,
    /// Phrase used when the simulated LLM speaks about this relation
    /// ("was born in"), `{o}` position implied after.
    pub phrase: &'static str,
    /// Single-hop question template with `{s}` placeholder, or None if
    /// the relation is never asked directly.
    pub question: Option<&'static str>,
    /// Referring-expression template ("the director of {s}") used to
    /// nest this relation inside multi-hop questions. Only meaningful
    /// for functional relations.
    pub descriptor: Option<&'static str>,
    /// Maximum number of objects per subject (1 = functional).
    pub max_objects: usize,
    /// Probability a subject of the right kind has this relation at all.
    pub density: f64,
    /// Rendered through a mediator (statement) node in the
    /// Wikidata-like source — one Freebase hop becomes two Wikidata hops
    /// (the Table 3 mismatch).
    pub wikidata_mediated: bool,
    /// The fact is "recent" knowledge (post-LLM-cutoff flavour): absent
    /// from the Freebase-like source and mostly unknown to model
    /// parametric memory.
    pub recent: bool,
}

/// The canonical relation vocabulary.
pub static RELATIONS: &[RelationSpec] = &[
    // ---- people ----
    RelationSpec {
        name: "place_of_birth",
        subject: EntityKind::Person,
        object: EntityKind::City,
        wikidata: "place of birth",
        freebase: "/people/person/place_of_birth",
        cypher: "BORN_IN",
        phrase: "was born in",
        question: Some("Where was {s} born?"),
        descriptor: Some("the birthplace of {s}"),
        max_objects: 1,
        density: 0.95,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "occupation",
        subject: EntityKind::Person,
        object: EntityKind::Occupation,
        wikidata: "occupation",
        freebase: "/people/person/profession",
        cypher: "HAS_OCCUPATION",
        phrase: "works as",
        question: Some("What is the occupation of {s}?"),
        descriptor: None,
        max_objects: 3,
        density: 0.9,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "spouse",
        subject: EntityKind::Person,
        object: EntityKind::Person,
        wikidata: "spouse",
        freebase: "/people/person/spouse_s",
        cypher: "MARRIED_TO",
        phrase: "is married to",
        question: Some("Who is the spouse of {s}?"),
        descriptor: Some("the spouse of {s}"),
        max_objects: 1,
        density: 0.6,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "citizenship",
        subject: EntityKind::Person,
        object: EntityKind::Country,
        wikidata: "country of citizenship",
        freebase: "/people/person/nationality",
        cypher: "CITIZEN_OF",
        phrase: "is a citizen of",
        question: Some("What is the nationality of {s}?"),
        descriptor: Some("the home country of {s}"),
        max_objects: 1,
        density: 0.9,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "educated_at",
        subject: EntityKind::Person,
        object: EntityKind::University,
        wikidata: "educated at",
        freebase: "/people/person/education",
        cypher: "STUDIED_AT",
        phrase: "studied at",
        question: Some("Where did {s} study?"),
        descriptor: None,
        max_objects: 2,
        density: 0.7,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "employer",
        subject: EntityKind::Person,
        object: EntityKind::Company,
        wikidata: "employer",
        freebase: "/people/person/employment_history",
        cypher: "WORKS_FOR",
        phrase: "works for",
        question: Some("Which company does {s} work for?"),
        descriptor: None,
        max_objects: 2,
        density: 0.5,
        wikidata_mediated: true,
        recent: false,
    },
    RelationSpec {
        name: "award_received",
        subject: EntityKind::Person,
        object: EntityKind::Award,
        wikidata: "award received",
        freebase: "/people/person/awards_won",
        cypher: "WON",
        phrase: "received",
        question: Some("Which award did {s} receive?"),
        descriptor: None,
        max_objects: 3,
        density: 0.35,
        wikidata_mediated: true,
        recent: false,
    },
    RelationSpec {
        name: "known_for_pioneering",
        subject: EntityKind::Person,
        object: EntityKind::Field,
        wikidata: "known for",
        freebase: "/people/person/known_for",
        cypher: "PIONEER_OF",
        phrase: "is acknowledged as a pioneer of",
        question: None,
        descriptor: None,
        max_objects: 2,
        density: 0.75,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "plays_sport",
        subject: EntityKind::Person,
        object: EntityKind::Sport,
        wikidata: "sport",
        freebase: "/sports/pro_athlete/sport",
        cypher: "PLAYS",
        phrase: "plays",
        question: Some("Which sport does {s} play?"),
        descriptor: Some("the sport played by {s}"),
        max_objects: 1,
        density: 0.3,
        wikidata_mediated: true,
        recent: false,
    },
    RelationSpec {
        name: "member_of_team",
        subject: EntityKind::Person,
        object: EntityKind::Team,
        wikidata: "member of sports team",
        freebase: "/sports/pro_athlete/teams",
        cypher: "MEMBER_OF",
        phrase: "is a member of",
        question: Some("Which team does {s} play for?"),
        descriptor: None,
        max_objects: 2,
        density: 0.25,
        wikidata_mediated: true,
        recent: false,
    },
    // ---- geography ----
    RelationSpec {
        name: "capital",
        subject: EntityKind::Country,
        object: EntityKind::City,
        wikidata: "capital",
        freebase: "/location/country/capital",
        cypher: "HAS_CAPITAL",
        phrase: "has the capital",
        question: Some("What is the capital of {s}?"),
        descriptor: Some("the capital of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "country_of",
        subject: EntityKind::City,
        object: EntityKind::Country,
        wikidata: "country",
        freebase: "/location/location/containedby",
        cypher: "LOCATED_IN",
        phrase: "is located in",
        question: Some("In which country is {s}?"),
        descriptor: Some("the country of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "continent",
        subject: EntityKind::Country,
        object: EntityKind::Continent,
        wikidata: "continent",
        freebase: "/location/country/continent",
        cypher: "PART_OF",
        phrase: "is part of",
        question: Some("On which continent is {s}?"),
        descriptor: Some("the continent of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "flows_through",
        subject: EntityKind::River,
        object: EntityKind::Country,
        wikidata: "country",
        freebase: "/geography/river/basin_countries",
        cypher: "FLOWS_THROUGH",
        phrase: "flows through",
        question: Some("Which countries does {s} flow through?"),
        descriptor: None,
        max_objects: 6,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "covers",
        subject: EntityKind::MountainRange,
        object: EntityKind::Country,
        wikidata: "country",
        freebase: "/geography/mountain_range/countries",
        cypher: "COVERS",
        phrase: "covers",
        question: Some("Which countries does {s} cover?"),
        descriptor: None,
        max_objects: 8,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "lake_country",
        subject: EntityKind::Lake,
        object: EntityKind::Country,
        wikidata: "country",
        freebase: "/geography/lake/containing_country",
        cypher: "IN_COUNTRY",
        phrase: "lies in",
        question: Some("In which country is {s}?"),
        descriptor: None,
        max_objects: 3,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "highest_point",
        subject: EntityKind::Country,
        object: EntityKind::Mountain,
        wikidata: "highest point",
        freebase: "/location/country/highest_point",
        cypher: "HIGHEST_POINT",
        phrase: "has its highest point at",
        question: Some("What is the highest point of {s}?"),
        descriptor: Some("the highest point of {s}"),
        max_objects: 1,
        density: 0.8,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "mountain_range_of",
        subject: EntityKind::Mountain,
        object: EntityKind::MountainRange,
        wikidata: "mountain range",
        freebase: "/geography/mountain/mountain_range",
        cypher: "PART_OF_RANGE",
        phrase: "belongs to",
        question: Some("Which range does {s} belong to?"),
        descriptor: Some("the range of {s}"),
        max_objects: 1,
        density: 0.9,
        wikidata_mediated: false,
        recent: false,
    },
    // ---- arts ----
    RelationSpec {
        name: "director",
        subject: EntityKind::Film,
        object: EntityKind::Person,
        wikidata: "director",
        freebase: "/film/film/directed_by",
        cypher: "DIRECTED_BY",
        phrase: "was directed by",
        question: Some("Who directed {s}?"),
        descriptor: Some("the director of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "starring",
        subject: EntityKind::Film,
        object: EntityKind::Person,
        wikidata: "cast member",
        freebase: "/film/film/starring",
        cypher: "STARS",
        phrase: "stars",
        question: Some("Who starred in {s}?"),
        descriptor: None,
        max_objects: 4,
        density: 0.95,
        wikidata_mediated: true,
        recent: false,
    },
    RelationSpec {
        name: "author",
        subject: EntityKind::Book,
        object: EntityKind::Person,
        wikidata: "author",
        freebase: "/book/written_work/author",
        cypher: "WRITTEN_BY",
        phrase: "was written by",
        question: Some("Who wrote {s}?"),
        descriptor: Some("the author of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "film_genre",
        subject: EntityKind::Film,
        object: EntityKind::Genre,
        wikidata: "genre",
        freebase: "/film/film/genre",
        cypher: "HAS_GENRE",
        phrase: "belongs to the genre",
        question: Some("What genre is {s}?"),
        descriptor: None,
        max_objects: 2,
        density: 0.9,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "band_member",
        subject: EntityKind::Band,
        object: EntityKind::Person,
        wikidata: "has part",
        freebase: "/music/musical_group/member",
        cypher: "HAS_MEMBER",
        phrase: "includes the member",
        question: Some("Who is a member of {s}?"),
        descriptor: None,
        max_objects: 5,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "music_genre",
        subject: EntityKind::Band,
        object: EntityKind::Genre,
        wikidata: "genre",
        freebase: "/music/artist/genre",
        cypher: "HAS_GENRE",
        phrase: "plays the genre",
        question: Some("What genre does {s} play?"),
        descriptor: None,
        max_objects: 3,
        density: 0.9,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "record_label",
        subject: EntityKind::Band,
        object: EntityKind::Company,
        wikidata: "record label",
        freebase: "/music/artist/label",
        cypher: "SIGNED_TO",
        phrase: "is signed to",
        question: Some("Which label is {s} signed to?"),
        descriptor: Some("the record label of {s}"),
        max_objects: 1,
        density: 0.8,
        wikidata_mediated: true,
        recent: false,
    },
    // ---- organisations & tech ----
    RelationSpec {
        name: "founded_by",
        subject: EntityKind::Company,
        object: EntityKind::Person,
        wikidata: "founded by",
        freebase: "/organization/organization/founders",
        cypher: "FOUNDED_BY",
        phrase: "was founded by",
        question: Some("Who founded {s}?"),
        descriptor: None,
        max_objects: 2,
        density: 0.9,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "headquarters",
        subject: EntityKind::Company,
        object: EntityKind::City,
        wikidata: "headquarters location",
        freebase: "/organization/organization/headquarters",
        cypher: "HEADQUARTERED_IN",
        phrase: "is headquartered in",
        question: Some("Where is {s} headquartered?"),
        descriptor: Some("the headquarters city of {s}"),
        max_objects: 1,
        density: 0.95,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "ceo",
        subject: EntityKind::Company,
        object: EntityKind::Person,
        wikidata: "chief executive officer",
        freebase: "/business/company/ceo",
        cypher: "LED_BY",
        phrase: "is led by",
        question: Some("Who is the CEO of {s}?"),
        descriptor: Some("the CEO of {s}"),
        max_objects: 1,
        density: 0.85,
        wikidata_mediated: true,
        recent: false,
    },
    RelationSpec {
        name: "developed_by",
        subject: EntityKind::Device,
        object: EntityKind::Company,
        wikidata: "developer",
        freebase: "/computer/device/developer",
        cypher: "DEVELOPED_BY",
        phrase: "was developed by",
        question: Some("Which company developed {s}?"),
        descriptor: Some("the company behind {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: true,
    },
    RelationSpec {
        name: "uses_chip",
        subject: EntityKind::Device,
        object: EntityKind::Chip,
        wikidata: "has part",
        freebase: "/computer/device/processor",
        cypher: "COMES_WITH",
        phrase: "comes with",
        question: Some("What kind of chips does {s} use?"),
        descriptor: None,
        max_objects: 2,
        density: 1.0,
        wikidata_mediated: false,
        recent: true,
    },
    RelationSpec {
        name: "university_city",
        subject: EntityKind::University,
        object: EntityKind::City,
        wikidata: "located in",
        freebase: "/education/university/city",
        cypher: "LOCATED_IN",
        phrase: "is located in",
        question: Some("In which city is {s}?"),
        descriptor: Some("the city of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
    RelationSpec {
        name: "team_city",
        subject: EntityKind::Team,
        object: EntityKind::City,
        wikidata: "home venue city",
        freebase: "/sports/sports_team/location",
        cypher: "BASED_IN",
        phrase: "is based in",
        question: Some("Where is {s} based?"),
        descriptor: Some("the home city of {s}"),
        max_objects: 1,
        density: 1.0,
        wikidata_mediated: false,
        recent: false,
    },
];

/// Look up a relation id by canonical name.
pub fn rel_by_name(name: &str) -> Option<RelId> {
    RELATIONS
        .iter()
        .position(|r| r.name == name)
        .map(|i| RelId(i as u16))
}

/// All relation ids.
pub fn all_rel_ids() -> impl Iterator<Item = RelId> {
    (0..RELATIONS.len() as u16).map(RelId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_names_are_unique() {
        let mut names: Vec<_> = RELATIONS.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RELATIONS.len());
    }

    #[test]
    fn rel_by_name_roundtrip() {
        let id = rel_by_name("place_of_birth").unwrap();
        assert_eq!(id.spec().wikidata, "place of birth");
        assert!(rel_by_name("nonexistent").is_none());
    }

    #[test]
    fn question_templates_contain_placeholder() {
        for r in RELATIONS {
            if let Some(q) = r.question {
                assert!(q.contains("{s}"), "{} template missing {{s}}", r.name);
            }
        }
    }

    #[test]
    fn functional_relations_have_max_one() {
        let cap = rel_by_name("capital").unwrap().spec();
        assert_eq!(cap.max_objects, 1);
        let covers = rel_by_name("covers").unwrap().spec();
        assert!(covers.max_objects > 1);
    }

    #[test]
    fn recent_relations_marked() {
        assert!(rel_by_name("uses_chip").unwrap().spec().recent);
        assert!(!rel_by_name("capital").unwrap().spec().recent);
    }

    #[test]
    fn densities_are_probabilities() {
        for r in RELATIONS {
            assert!((0.0..=1.0).contains(&r.density), "{}", r.name);
        }
    }

    #[test]
    fn some_relations_are_mediated() {
        let mediated: Vec<_> = RELATIONS.iter().filter(|r| r.wikidata_mediated).collect();
        assert!(
            mediated.len() >= 3,
            "need enough mediated relations for Table 3"
        );
    }
}
