//! World generation: entities with Zipf popularity and deliberate label
//! ambiguity, then facts drawn per relation spec.

use crate::names::{fresh_name_ranked, pool_capacity};
use crate::schema::{all_rel_ids, EntityKind};
use crate::world::{EntityId, World, WorldEntity};
use kgstore::hash::FxHashSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size and shape knobs for world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Scale factor on all entity counts (1.0 = defaults below).
    pub scale: f64,
    /// Fraction of entities that share a label with another entity of
    /// the same kind (the "7 Yao Mings" ambiguity).
    pub ambiguity_rate: f64,
    /// Fraction of entities receiving an alias.
    pub alias_rate: f64,
    /// Zipf exponent for popularity by rank.
    pub zipf_exponent: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            scale: 1.0,
            ambiguity_rate: 0.05,
            alias_rate: 0.2,
            zipf_exponent: 0.7,
        }
    }
}

/// Default entity count per kind (before scaling).
fn base_count(kind: EntityKind) -> usize {
    match kind {
        EntityKind::Person => 360,
        EntityKind::City => 100,
        EntityKind::Country => 45,
        EntityKind::Continent => 6,
        EntityKind::River => 36,
        EntityKind::MountainRange => 18,
        EntityKind::Lake => 24,
        EntityKind::Mountain => 30,
        EntityKind::Company => 60,
        EntityKind::Device => 40,
        EntityKind::Chip => 18,
        EntityKind::University => 36,
        EntityKind::Film => 80,
        EntityKind::Book => 50,
        EntityKind::Band => 36,
        EntityKind::Genre => 20,
        EntityKind::Award => 15,
        EntityKind::Field => 12,
        EntityKind::Occupation => 20,
        EntityKind::Sport => 12,
        EntityKind::Team => 30,
    }
}

/// Generate a complete world from a config.
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut world = World::default();
    let mut used_names = FxHashSet::default();

    // --- entities ---
    for kind in EntityKind::ALL {
        let n = (((base_count(kind) as f64) * cfg.scale).round() as usize)
            .max(2)
            .min(pool_capacity(kind));
        for rank in 0..n {
            let label = fresh_name_ranked(kind, rank, &mut rng, &mut used_names);
            // Zipf by rank within kind, normalised so rank 0 has pop 1.
            let popularity = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
            let description = format!("{} (#{} by prominence)", kind.noun(), rank + 1);
            world.push_entity(WorldEntity {
                id: EntityId(0), // assigned by push_entity
                kind,
                label,
                aliases: Vec::new(),
                description,
                popularity,
            });
        }
    }

    inject_ambiguity(&mut world, cfg, &mut rng);
    inject_aliases(&mut world, cfg, &mut rng);
    generate_facts(&mut world, &mut rng);
    world
}

/// Relabel a fraction of low-popularity entities with the label of a
/// more popular same-kind entity, so surface forms collide.
fn inject_ambiguity(world: &mut World, cfg: &WorldConfig, rng: &mut StdRng) {
    for kind in EntityKind::ALL {
        // Ambiguity only makes sense for kinds with open name spaces.
        if pool_capacity(kind) != usize::MAX {
            continue;
        }
        let ids: Vec<EntityId> = world.entities_of_kind(kind).to_vec();
        if ids.len() < 4 {
            continue;
        }
        let n_dupes = ((ids.len() as f64) * cfg.ambiguity_rate).round() as usize;
        for d in 0..n_dupes {
            // Duplicate a label from the popular half onto an entity in
            // the unpopular half.
            let src = ids[rng.random_range(0..ids.len() / 2)];
            let dst = ids[ids.len() / 2 + rng.random_range(0..ids.len() - ids.len() / 2)];
            if src == dst {
                continue;
            }
            let label = world.entity(src).label.clone();
            let e = &mut world.entities[dst.0 as usize];
            e.label = label;
            e.description = format!("{} (lesser-known namesake {})", kind.noun(), d + 1);
        }
    }
}

/// Give a fraction of entities an alias surface form.
fn inject_aliases(world: &mut World, cfg: &WorldConfig, rng: &mut StdRng) {
    let n = world.entity_count();
    for i in 0..n {
        if rng.random::<f64>() >= cfg.alias_rate {
            continue;
        }
        let e = &mut world.entities[i];
        let alias = match e.kind {
            // Acronym for multiword names ("Tekna Systems" → "TS").
            EntityKind::Company | EntityKind::University | EntityKind::Team => e
                .label
                .split_whitespace()
                .filter_map(|w| w.chars().next())
                .collect::<String>()
                .to_uppercase(),
            // "The X" for bands and ranges.
            EntityKind::Band | EntityKind::MountainRange => format!("The {}", e.label),
            // Surname-only alias for persons.
            EntityKind::Person => e
                .label
                .split_whitespace()
                .last()
                .unwrap_or(&e.label)
                .to_string(),
            _ => continue,
        };
        if alias.len() > 1 && alias != e.label {
            e.aliases.push(alias);
        }
    }
}

/// Draw facts for every relation spec.
fn generate_facts(world: &mut World, rng: &mut StdRng) {
    // Pre-compute popularity-weighted samplers per kind.
    let mut samplers: Vec<(EntityKind, WeightedSampler)> = Vec::new();
    for kind in EntityKind::ALL {
        let ids = world.entities_of_kind(kind).to_vec();
        let weights: Vec<f64> = ids
            .iter()
            .map(|&id| world.entity(id).popularity.powf(1.2))
            .collect();
        samplers.push((kind, WeightedSampler::new(ids, weights)));
    }
    let sampler_of = |kind: EntityKind, samplers: &[(EntityKind, WeightedSampler)]| {
        samplers
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.clone())
            .expect("sampler for kind")
    };

    let mut seen: FxHashSet<(EntityId, u16, EntityId)> = FxHashSet::default();
    for rel in all_rel_ids() {
        let spec = rel.spec();
        let subjects: Vec<EntityId> = world.entities_of_kind(spec.subject).to_vec();
        let obj_sampler = sampler_of(spec.object, &samplers);
        for s in subjects {
            if rng.random::<f64>() >= spec.density {
                continue;
            }
            // Field pioneers are, by construction of the concept,
            // prominent people: being "acknowledged as a trailblazer"
            // correlates with fame (cf. the paper's "most famous
            // painter" example).
            if spec.name == "known_for_pioneering" && world.entity(s).popularity < 0.08 {
                continue;
            }
            let k = if spec.max_objects == 1 {
                1
            } else {
                // Skew low: most subjects have few objects.
                1 + rng.random_range(0..spec.max_objects)
            };
            let mut placed = 0;
            let mut attempts = 0;
            while placed < k && attempts < 20 {
                attempts += 1;
                let Some(o) = obj_sampler.sample(rng) else {
                    break;
                };
                if o == s || !seen.insert((s, rel.0, o)) {
                    continue;
                }
                world.push_fact(s, rel, o);
                placed += 1;
            }
        }
    }
}

/// Cumulative-weight sampler over entity ids.
#[derive(Debug, Clone)]
struct WeightedSampler {
    ids: Vec<EntityId>,
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    fn new(ids: Vec<EntityId>, weights: Vec<f64>) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        Self { ids, cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> Option<EntityId> {
        let total = *self.cumulative.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = rng.random::<f64>() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.ids.len() - 1);
        Some(self.ids[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::rel_by_name;

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&WorldConfig::default());
        let b = generate(&WorldConfig::default());
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.fact_count(), b.fact_count());
        assert_eq!(a.entities[7].label, b.entities[7].label);
        assert_eq!(a.facts[100], b.facts[100]);
    }

    #[test]
    fn different_seed_different_world() {
        let a = generate(&WorldConfig::default());
        let b = generate(&WorldConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(
            a.entities.iter().map(|e| &e.label).collect::<Vec<_>>(),
            b.entities.iter().map(|e| &e.label).collect::<Vec<_>>()
        );
    }

    #[test]
    fn world_has_reasonable_size() {
        let w = world();
        assert!(w.entity_count() > 800, "entities: {}", w.entity_count());
        assert!(w.fact_count() > 2000, "facts: {}", w.fact_count());
    }

    #[test]
    fn ambiguous_labels_exist() {
        let w = world();
        let mut by_label: std::collections::HashMap<&str, usize> = Default::default();
        for e in &w.entities {
            *by_label.entry(e.label.as_str()).or_default() += 1;
        }
        let dup = by_label.values().filter(|&&c| c > 1).count();
        assert!(
            dup >= 10,
            "expected ambiguity, found {dup} duplicated labels"
        );
    }

    #[test]
    fn functional_relations_stay_functional() {
        let w = world();
        let capital = rel_by_name("capital").unwrap();
        for c in w.entities_of_kind(EntityKind::Country) {
            assert!(w.objects_of(*c, capital).len() <= 1);
        }
    }

    #[test]
    fn multi_valued_relations_have_lists() {
        let w = world();
        let covers = rel_by_name("covers").unwrap();
        let max = w
            .entities_of_kind(EntityKind::MountainRange)
            .iter()
            .map(|&r| w.objects_of(r, covers).len())
            .max()
            .unwrap();
        assert!(max >= 3, "expected multi-country ranges, max was {max}");
    }

    #[test]
    fn popularity_is_zipf_ordered() {
        let w = world();
        let persons = w.entities_of_kind(EntityKind::Person);
        assert!(w.entity(persons[0]).popularity > w.entity(persons[50]).popularity);
        assert_eq!(w.entity(persons[0]).popularity, 1.0);
    }

    #[test]
    fn aliases_were_injected() {
        let w = world();
        let with_alias = w.entities.iter().filter(|e| !e.aliases.is_empty()).count();
        assert!(with_alias > 50, "aliases: {with_alias}");
    }

    #[test]
    fn no_self_loops_or_duplicate_facts() {
        let w = world();
        let mut seen = FxHashSet::default();
        for f in &w.facts {
            assert_ne!(f.s, f.o, "self loop");
            assert!(seen.insert((f.s, f.rel, f.o)), "duplicate fact");
        }
    }

    #[test]
    fn scaled_world_grows_past_name_pools() {
        // Scale 20 pushes several kinds (rivers, lakes, universities…)
        // far beyond their composed name spaces; generation must stay
        // fast, unique, and roughly linear in scale.
        let w = generate(&WorldConfig {
            scale: 20.0,
            ..Default::default()
        });
        let base = world();
        assert!(
            w.entity_count() > base.entity_count() * 15,
            "entities: {} vs base {}",
            w.entity_count(),
            base.entity_count()
        );
        assert!(
            w.fact_count() > base.fact_count() * 10,
            "facts: {} vs base {}",
            w.fact_count(),
            base.fact_count()
        );
        let labels: FxHashSet<(EntityKind, &str)> = w
            .entities
            .iter()
            .map(|e| (e.kind, e.label.as_str()))
            .collect();
        // Ambiguity injection deliberately duplicates a few labels, but
        // the overwhelming majority must be unique.
        assert!(labels.len() as f64 > w.entity_count() as f64 * 0.9);
    }

    #[test]
    fn scaled_world_shrinks() {
        let small = generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        });
        let full = world();
        assert!(small.entity_count() < full.entity_count() / 2);
    }
}
