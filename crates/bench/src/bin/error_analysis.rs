//! §4.6 — error analysis across the four pipeline steps.
//!
//! Reproduces the paper's quantitative claims:
//! * §4.6.1 — Cypher generation error rate ≈ 0.6% for GPT-3.5 on
//!   QALD-10 + SimpleQuestions; dominant failure = spurious `MATCH`.
//! * §4.6.3 — verification-introduced new errors as a share of total
//!   QALD-10 errors: 15.2% (GPT-3.5) / 13.8% (GPT-4) — measured by
//!   diffing per-question outcomes of pseudo-only vs verified runs.
//! * §4.6.2 / §4.6.4 — pruning and answer-generation diagnostics.
//!
//! Usage: `cargo run --release -p bench --bin error_analysis`
//! (`FAST=1` shrinks the SimpleQuestions sample).

use bench::run_or_exit as run;
use bench::{model, setup};
use evalkit::{Cell, ErrorStage, ErrorTally, Table};
use pgg_core::{PseudoGraphPipeline, RunResult};

fn main() {
    let fast = std::env::var("FAST").is_ok();
    let exp = setup(if fast { 150 } else { 1000 });

    let mut table = Table::new(
        "Error analysis (paper / measured)",
        &["Quantity", "GPT-3.5", "GPT-4"],
    );

    let mut cypher_rates = Vec::new();
    let mut verif_shares = Vec::new();
    let mut prune_stats = Vec::new();
    let mut diag_counts: Vec<Vec<usize>> = Vec::new();
    let mut salvage_rates = Vec::new();

    for model_name in ["gpt-3.5", "gpt-4"] {
        let llm = model(&exp.world, model_name);
        let qald_base = exp.base(&exp.qald, &exp.wikidata);
        let sq_base = exp.base(&exp.simpleq, &exp.freebase);

        let full = PseudoGraphPipeline::full();
        let pseudo_only = PseudoGraphPipeline::pseudo_only();

        let qald_full = run(
            &full,
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &exp.cfg,
            &exp.qald,
            0,
        );
        let qald_pseudo = run(
            &pseudo_only,
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &exp.cfg,
            &exp.qald,
            0,
        );
        let sq_full = run(
            &full,
            &llm,
            Some(&exp.freebase),
            Some(&sq_base),
            &exp.embedder,
            &exp.cfg,
            &exp.simpleq,
            0,
        );

        // §4.6.1 — Cypher failures over QALD + SQ.
        let mut tally = ErrorTally::default();
        let mut spurious = 0usize;
        for r in qald_full.records.iter().chain(&sq_full.records) {
            let stage = r.trace.cypher_error.as_deref().map(|c| {
                if c == "spurious-match" {
                    spurious += 1;
                }
                ErrorStage::PseudoGraphGeneration
            });
            tally.record(stage);
        }
        let cypher_rate = tally.rate_of_questions(ErrorStage::PseudoGraphGeneration);
        cypher_rates.push(cypher_rate);
        println!(
            "[{model_name}] cypher failures: {} of {} questions ({:.2}%), {} spurious MATCH",
            tally.count(ErrorStage::PseudoGraphGeneration),
            tally.total_questions,
            cypher_rate,
            spurious,
        );

        // cylint — per-code diagnostic counts over QALD + SQ, and the
        // salvage rate: raw-failing scripts the repair pass made
        // executable.
        let mut per_code = vec![0usize; cypher::Code::ALL.len()];
        let mut raw_failures = 0usize;
        let mut salvaged = 0usize;
        for r in qald_full.records.iter().chain(&sq_full.records) {
            for d in &r.trace.diagnostics {
                let idx = cypher::Code::ALL
                    .iter()
                    .position(|c| *c == d.code)
                    .expect("known code");
                per_code[idx] += 1;
            }
            if r.trace.cypher_error.is_some() {
                raw_failures += 1;
                if r.trace.salvaged {
                    salvaged += 1;
                }
            }
        }
        let salvage_rate = if raw_failures == 0 {
            0.0
        } else {
            100.0 * salvaged as f64 / raw_failures as f64
        };
        let summary: Vec<String> = cypher::Code::ALL
            .iter()
            .zip(&per_code)
            .filter(|(_, n)| **n > 0)
            .map(|(c, n)| format!("{}:{n}", c.id()))
            .collect();
        println!(
            "[{model_name}] cylint diagnostics: [{}]; salvage {salvaged}/{raw_failures} \
             raw-failing scripts ({salvage_rate:.1}%)",
            summary.join(" "),
        );
        diag_counts.push(per_code);
        salvage_rates.push(salvage_rate);

        // §4.6.3 — verification-introduced errors on QALD-10: questions
        // the pseudo-graph got right but the verified pipeline got wrong,
        // as a share of the verified pipeline's total errors.
        let new_errors = qald_full
            .records
            .iter()
            .zip(&qald_pseudo.records)
            .filter(|(f, p)| p.hit == Some(true) && f.hit == Some(false))
            .count();
        let total_errors = qald_full
            .records
            .iter()
            .filter(|r| r.hit == Some(false))
            .count();
        let share = if total_errors == 0 {
            0.0
        } else {
            100.0 * new_errors as f64 / total_errors as f64
        };
        verif_shares.push(share);
        println!(
            "[{model_name}] verification introduced {new_errors} new errors of \
             {total_errors} total QALD-10 errors ({share:.1}%)",
        );

        // §4.6.2 — pruning diagnostics: how often the ground graph came
        // back empty (threshold pruned everything or retrieval missed).
        let empty_ground = qald_full
            .records
            .iter()
            .filter(|r| r.trace.ground_entities.is_empty())
            .count();
        prune_stats.push(100.0 * empty_ground as f64 / qald_full.records.len() as f64);
        println!(
            "[{model_name}] empty ground graph on {empty_ground}/{} QALD questions",
            qald_full.records.len()
        );

        // §4.6.4 — answer generation follows the graph: share of
        // grounded questions whose answer cites the graph.
        let followed = qald_full
            .records
            .iter()
            .filter(|r| !r.trace.fixed_triples.is_empty())
            .filter(|r| r.answer.starts_with("Based on the graph"))
            .count();
        let grounded = qald_full
            .records
            .iter()
            .filter(|r| !r.trace.fixed_triples.is_empty())
            .count();
        println!("[{model_name}] answers grounded in the graph: {followed}/{grounded}\n");
        let _ = RunResult::default();
    }

    table.row(
        "Cypher error rate, QALD+SQ (%)",
        vec![
            Cell::PaperVsMeasured {
                paper: 0.6,
                measured: cypher_rates[0],
            },
            Cell::PaperVsMeasured {
                paper: 0.0,
                measured: cypher_rates[1],
            },
        ],
    );
    table.row(
        "Verification-introduced errors (% of errors)",
        vec![
            Cell::PaperVsMeasured {
                paper: 15.2,
                measured: verif_shares[0],
            },
            Cell::PaperVsMeasured {
                paper: 13.8,
                measured: verif_shares[1],
            },
        ],
    );
    table.row(
        "Empty ground graph, QALD (%)",
        vec![Cell::Value(prune_stats[0]), Cell::Value(prune_stats[1])],
    );
    table.row(
        "Cypher salvage rate (% of raw failures)",
        vec![Cell::Value(salvage_rates[0]), Cell::Value(salvage_rates[1])],
    );
    for (idx, code) in cypher::Code::ALL.iter().enumerate() {
        let counts = [diag_counts[0][idx], diag_counts[1][idx]];
        if counts.iter().all(|n| *n == 0) {
            continue;
        }
        table.row(
            format!("cylint {} {} (count)", code.id(), code.slug()),
            vec![Cell::Value(counts[0] as f64), Cell::Value(counts[1] as f64)],
        );
    }
    println!("{}", table.render());
}
