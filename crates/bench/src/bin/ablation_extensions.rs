//! Ablation of the future-work extensions the paper proposes (§5):
//! * pruning strategies (paper two-step vs score-weighted vs adaptive-k
//!   vs popularity prior);
//! * verification passes (single vs majority-of-3);
//! * IDF-weighted encoding ("better semantic encoding models").
//!
//! Usage: `cargo run --release -p bench --bin ablation_extensions`.

use bench::run_or_exit as run;
use bench::{model, setup};
use evalkit::{Cell, Table};
use pgg_core::{BaseIndex, PruneStrategy, PseudoGraphPipeline};
use semvec::{Embedder, IdfModel, SynonymTable};
use std::sync::Arc;

fn main() {
    let exp = setup(50);
    let llm = model(&exp.world, "gpt-3.5");
    let qald_base = exp.base(&exp.qald, &exp.wikidata);
    let nq_base = exp.base(&exp.nature, &exp.wikidata);
    let ours = PseudoGraphPipeline::full();

    // --- pruning strategies ---
    let mut t = Table::new(
        "Pruning-strategy ablation (GPT-3.5)",
        &["Strategy", "QALD-10 (Hit@1)", "Nature Questions (ROUGE-L)"],
    );
    for strategy in [
        PruneStrategy::PaperTwoStep,
        PruneStrategy::ScoreWeighted,
        PruneStrategy::AdaptiveK { max: 8 },
        PruneStrategy::PopularityPrior,
    ] {
        let cfg = pgg_core::PipelineConfig {
            prune: strategy,
            ..exp.cfg.clone()
        };
        let qald = run(
            &ours,
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &cfg,
            &exp.qald,
            0,
        );
        let nq = run(
            &ours,
            &llm,
            Some(&exp.wikidata),
            Some(&nq_base),
            &exp.embedder,
            &cfg,
            &exp.nature,
            0,
        );
        t.row(
            strategy.name(),
            vec![Cell::Value(qald.score()), Cell::Value(nq.score())],
        );
    }
    println!("{}", t.render());

    // --- verification passes ---
    let mut t = Table::new(
        "Verification-pass ablation (GPT-3.5)",
        &["Passes", "QALD-10 (Hit@1)", "Nature Questions (ROUGE-L)"],
    );
    for passes in [1u32, 3, 5] {
        let cfg = pgg_core::PipelineConfig {
            verify_passes: passes,
            ..exp.cfg.clone()
        };
        let qald = run(
            &ours,
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &cfg,
            &exp.qald,
            0,
        );
        let nq = run(
            &ours,
            &llm,
            Some(&exp.wikidata),
            Some(&nq_base),
            &exp.embedder,
            &cfg,
            &exp.nature,
            0,
        );
        t.row(
            format!("{passes}"),
            vec![Cell::Value(qald.score()), Cell::Value(nq.score())],
        );
    }
    println!("{}", t.render());

    // --- IDF-weighted encoder (rebuild bases with the new geometry) ---
    let mut t = Table::new(
        "Encoder ablation (GPT-3.5)",
        &["Encoder", "QALD-10 (Hit@1)", "Nature Questions (ROUGE-L)"],
    );
    let qald_plain = run(
        &ours,
        &llm,
        Some(&exp.wikidata),
        Some(&qald_base),
        &exp.embedder,
        &exp.cfg,
        &exp.qald,
        0,
    );
    let nq_plain = run(
        &ours,
        &llm,
        Some(&exp.wikidata),
        Some(&nq_base),
        &exp.embedder,
        &exp.cfg,
        &exp.nature,
        0,
    );
    t.row(
        "hashing (default)",
        vec![
            Cell::Value(qald_plain.score()),
            Cell::Value(nq_plain.score()),
        ],
    );

    // Fit IDF on the wikidata source verbalisations.
    let corpus: Vec<String> = exp
        .wikidata
        .store
        .iter()
        .take(20_000)
        .map(|tr| {
            let v = exp.wikidata.verbalize(tr);
            format!("{} {} {}", v.s, semvec::humanize_term(&v.p), v.o)
        })
        .collect();
    let idf = Arc::new(IdfModel::fit(
        corpus.iter().map(|s| s.as_str()),
        &SynonymTable::builtin(),
    ));
    let emb_idf = Embedder::paper().with_idf(idf);
    let qald_base_idf = BaseIndex::for_questions(
        &exp.wikidata,
        &emb_idf,
        &exp.cfg,
        exp.qald.questions.iter().map(|q| q.text.as_str()),
    );
    let nq_base_idf = BaseIndex::for_questions(
        &exp.wikidata,
        &emb_idf,
        &exp.cfg,
        exp.nature.questions.iter().map(|q| q.text.as_str()),
    );
    let qald_idf = run(
        &ours,
        &llm,
        Some(&exp.wikidata),
        Some(&qald_base_idf),
        &emb_idf,
        &exp.cfg,
        &exp.qald,
        0,
    );
    let nq_idf = run(
        &ours,
        &llm,
        Some(&exp.wikidata),
        Some(&nq_base_idf),
        &emb_idf,
        &exp.cfg,
        &exp.nature,
        0,
    );
    t.row(
        "hashing + IDF",
        vec![Cell::Value(qald_idf.score()), Cell::Value(nq_idf.score())],
    );
    println!("{}", t.render());
}
