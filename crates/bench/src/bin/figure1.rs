//! Figure 1 — a full walk-through of the pipeline on one open-ended
//! question, printing every intermediate artifact: the Figure-3 prompt,
//! the generated Cypher, the decoded pseudo-graph `G_p`, the pruned
//! ground graph `G_g`, the fixed graph `G_f`, and the final answer.
//!
//! Usage: `cargo run --release -p bench --bin figure1`.

use bench::{model, setup};
use cypher::decode_llm_output;
use pgg_core::ground_graph;
use simllm::behavior::verify::verify_graph;
use simllm::{prompt, LanguageModel, LlmTask};

fn main() {
    let exp = setup(50);
    let llm = model(&exp.world, "gpt-3.5");
    let base = exp.base(&exp.nature, &exp.wikidata);

    // Pick a who-list question, the paper's running example ("people
    // acknowledged as the trailblazer in the field of AI").
    let q = exp
        .nature
        .questions
        .iter()
        .find(|q| q.text.contains("trailblazers"))
        .unwrap_or(&exp.nature.questions[0]);

    println!("┌─ Question ─────────────────────────────────────────────");
    println!("│ {}", q.text);

    // Step 1 — Pseudo-Graph Generation.
    let p1 = prompt::pseudo_graph_prompt(&q.text);
    println!("├─ Step 1: prompt (first lines) ─────────────────────────");
    for line in p1.lines().take(5) {
        println!("│ {line}");
    }
    let raw = llm
        .complete(&p1, &LlmTask::PseudoGraph { question: q })
        .expect("SimLlm transport never faults")
        .text;
    println!("├─ Step 1: LLM output (Cypher) ──────────────────────────");
    for line in raw.lines().filter(|l| l.contains("CREATE")).take(8) {
        println!("│ {line}");
    }
    let pseudo = decode_llm_output(&raw).expect("valid pseudo-graph");
    println!("├─ Step 1: decoded pseudo-graph G_p ─────────────────────");
    for t in &pseudo {
        println!("│ {t}");
    }

    // Step 2 — Semantic Querying + two-step pruning.
    let (ground, stats) = ground_graph(&exp.wikidata, &base, &exp.embedder, &exp.cfg, &pseudo);
    println!("├─ Step 2: ground graph G_g ({:?}) ─", stats);
    for e in &ground.entities {
        println!(
            "│ [entity] {} — {} (score {:.2})",
            e.label, e.description, e.score
        );
        for t in e.triples.iter().take(4) {
            println!("│     {t}");
        }
    }

    // Step 3 — Pseudo-Graph Verification.
    let fixed = verify_graph(&llm.memory(), q, &pseudo, &ground);
    println!("├─ Step 3: fixed graph G_f ──────────────────────────────");
    for t in &fixed {
        println!("│ {t}");
    }

    // Step 4 — Answer Generation.
    let p4 = prompt::answer_prompt(&q.text, &fixed);
    let answer = llm
        .complete(
            &p4,
            &LlmTask::AnswerFromGraph {
                question: q,
                graph: &fixed,
            },
        )
        .expect("SimLlm transport never faults")
        .text;
    println!("├─ Step 4: answer ───────────────────────────────────────");
    println!("│ {answer}");
    if let worldgen::Gold::References(refs) = &q.gold {
        let prf = evalkit::rouge_l_multi(&answer, refs);
        println!("│ (ROUGE-L F1 vs references: {:.2})", prf.f1);
    }
    println!("└────────────────────────────────────────────────────────");
    println!(
        "\nLLM calls: {}, approx tokens: {}",
        llm.call_count(),
        llm.tokens_processed()
    );
}
