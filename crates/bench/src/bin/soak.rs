//! Soak bench: replay seeded Poisson offered load through the
//! concurrent QA service (`pgg_core::serve`) across a load sweep × a
//! fault-rate sweep, and hold the serving layer to its robustness
//! contract at every point:
//!
//! * zero panics — no `panic:` degradation note anywhere;
//! * every admitted question answered, non-empty (degraded ≠ dropped);
//! * shed fraction 0 at the lowest load with no faults;
//! * degradation is monotone-sane: the highest load never sheds a
//!   smaller fraction than the lowest load under the same weather;
//! * outcomes byte-identical with 1 vs 8 worker threads (the DES
//!   determinism contract, checked via [`ServeReport::identity_key`]).
//!
//! All latencies are *virtual* milliseconds on the seeded clock, so the
//! whole sweep is reproducible bit-for-bit.
//!
//! Usage:
//! * `cargo run --release -p bench --bin soak` — full sweep
//!   (SimpleQuestions N=20, loads 2/6/16 q/s × faults 0/0.2/0.5/storm,
//!   48 arrivals per arm), writes `BENCH_soak.json`;
//! * `cargo run --release -p bench --bin soak -- --smoke` — the CI
//!   smoke: one mid-load faulted arm, asserts the contract and exits.

use bench::warn::WarnLog;
use bench::{model, setup};
use pgg_core::{serve, Disposition, OfferedTrace, ServeConfig, ServeReport};
use simllm::FaultPlan;
use worldgen::Question;

const TRACE_SEED: u64 = 0x50AC_0007;
const FAULT_SEED: u64 = 0xC8A0_6001;

/// One fault-weather arm of the sweep.
#[derive(Clone, Copy)]
enum Weather {
    /// Uniform per-attempt fault probability across every question.
    Uniform(f64),
    /// A seeded fraction of questions faulting hard, the rest clean.
    Storm { frac: f64, total: f64 },
}

impl Weather {
    fn label(self) -> String {
        match self {
            Weather::Uniform(r) => format!("uniform({r:.1})"),
            Weather::Storm { frac, total } => format!("storm({frac:.1}@{total:.1})"),
        }
    }

    fn plan(self) -> FaultPlan {
        match self {
            Weather::Uniform(r) => FaultPlan::uniform(FAULT_SEED, r),
            Weather::Storm { frac, total } => FaultPlan::storm(FAULT_SEED, frac, total),
        }
    }
}

struct Arm {
    load_qps: f64,
    weather: Weather,
    report: ServeReport,
    /// identity_key(workers=1) == identity_key(workers=8).
    identity_ok: bool,
}

/// Run one (load × weather) arm twice — 1 worker and 8 workers — and
/// keep the 8-worker report (they must be byte-identical anyway).
fn run_arm(
    exp: &bench::Experiment,
    base: &pgg_core::BaseIndex,
    questions: &[Question],
    load_qps: f64,
    weather: Weather,
    arrivals: usize,
) -> Arm {
    let offered = OfferedTrace::poisson(TRACE_SEED, load_qps, arrivals, questions.len());
    let run = |workers: usize| {
        // Fresh fault decorator per run: its per-slot attempt counters
        // are state, and sharing them across runs (or worker counts)
        // would entangle the fault schedules.
        let faulty = simllm::FaultyLlm::new(model(&exp.world, "gpt-3.5"), weather.plan());
        let scfg = ServeConfig {
            workers,
            ..ServeConfig::default()
        };
        serve(
            &faulty,
            &exp.wikidata,
            base,
            &exp.embedder,
            &exp.cfg,
            &scfg,
            questions,
            &offered,
        )
    };
    let one = run(1);
    let eight = run(8);
    let identity_ok = one.identity_key() == eight.identity_key();
    Arm {
        load_qps,
        weather,
        report: eight,
        identity_ok,
    }
}

/// The per-arm robustness contract. Returns violations.
fn check_arm(a: &Arm) -> Vec<String> {
    let tag = format!("load {:.0} q/s, {}", a.load_qps, a.weather.label());
    let mut bad = Vec::new();
    if !a.identity_ok {
        bad.push(format!("{tag}: outcomes differ between 1 and 8 workers"));
    }
    for o in &a.report.outcomes {
        if let Disposition::Answered {
            answer,
            degradation,
            ..
        } = &o.disposition
        {
            if answer.is_empty() {
                bad.push(format!("{tag}: offered #{} answered empty", o.offered));
            }
            if let Some(p) = degradation.iter().find(|d| d.starts_with("panic:")) {
                bad.push(format!("{tag}: worker panic surfaced — {p}"));
            }
        }
    }
    bad
}

fn deadline_degraded(r: &ServeReport) -> usize {
    r.outcomes
        .iter()
        .filter(|o| match &o.disposition {
            Disposition::Answered { degradation, .. } => {
                degradation.iter().any(|d| d.starts_with("deadline:"))
            }
            Disposition::Shed { .. } => false,
        })
        .count()
}

fn saturation_qps(r: &ServeReport) -> f64 {
    if r.makespan_ms == 0 {
        0.0
    } else {
        r.answered() as f64 / (r.makespan_ms as f64 / 1e3)
    }
}

fn arm_json(a: &Arm) -> String {
    format!(
        concat!(
            "    {{\"load_qps\": {:.1}, \"weather\": \"{}\", ",
            "\"offered\": {}, \"answered\": {}, \"shed\": {}, ",
            "\"shed_fraction\": {:.4}, \"p50_ms\": {}, \"p99_ms\": {}, ",
            "\"saturation_qps\": {:.2}, \"deadline_degraded\": {}, ",
            "\"breaker_transitions\": {}, \"batches\": {}, ",
            "\"workers_1_vs_8_identical\": {}}}"
        ),
        a.load_qps,
        a.weather.label(),
        a.report.outcomes.len(),
        a.report.answered(),
        a.report.shed(),
        a.report.shed_fraction(),
        a.report.latency_percentile_ms(50.0),
        a.report.latency_percentile_ms(99.0),
        saturation_qps(&a.report),
        deadline_degraded(&a.report),
        a.report.breaker_transitions.len(),
        a.report.batch.batches,
        a.identity_ok,
    )
}

fn smoke() {
    let exp = setup(20);
    let base = exp.base(&exp.simpleq, &exp.wikidata);
    let a = run_arm(
        &exp,
        &base,
        &exp.simpleq.questions,
        6.0,
        Weather::Uniform(0.3),
        16,
    );
    let violations = check_arm(&a);
    for v in &violations {
        eprintln!("soak smoke violation: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    println!(
        "soak smoke ok: 16 offered at 6 q/s, fault 0.3 — answered={} shed={} \
         p50={}ms p99={}ms transitions={} workers 1/8 identical",
        a.report.answered(),
        a.report.shed(),
        a.report.latency_percentile_ms(50.0),
        a.report.latency_percentile_ms(99.0),
        a.report.breaker_transitions.len(),
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let exp = setup(20);
    let base = exp.base(&exp.simpleq, &exp.wikidata);
    let questions = &exp.simpleq.questions;
    let loads = [2.0, 6.0, 16.0];
    let weathers = [
        Weather::Uniform(0.0),
        Weather::Uniform(0.2),
        Weather::Uniform(0.5),
        Weather::Storm {
            frac: 0.4,
            total: 1.0,
        },
    ];
    const ARRIVALS: usize = 48;

    let mut arms: Vec<Arm> = Vec::new();
    for &w in &weathers {
        for &load in &loads {
            let a = run_arm(&exp, &base, questions, load, w, ARRIVALS);
            println!(
                "arm load={:>4.1} q/s weather={:<16} answered={:>2} shed={:>2} \
                 shed_frac={:.2} p50={:>5}ms p99={:>5}ms sat={:>5.2} q/s \
                 degraded={:>2} transitions={} identical={}",
                a.load_qps,
                a.weather.label(),
                a.report.answered(),
                a.report.shed(),
                a.report.shed_fraction(),
                a.report.latency_percentile_ms(50.0),
                a.report.latency_percentile_ms(99.0),
                saturation_qps(&a.report),
                deadline_degraded(&a.report),
                a.report.breaker_transitions.len(),
                a.identity_ok,
            );
            arms.push(a);
        }
    }

    let mut violations: Vec<String> = Vec::new();
    for a in &arms {
        violations.extend(check_arm(a));
    }
    // The clean low-load arm must shed nothing: backpressure and the
    // breaker exist for overload and fault storms, not fair weather.
    let calm = &arms[0];
    if calm.report.shed() != 0 {
        violations.push(format!(
            "lowest load with no faults shed {} arrivals",
            calm.report.shed()
        ));
    }
    // Monotone-sane degradation per weather: more offered load never
    // sheds a *smaller* fraction.
    for w_idx in 0..weathers.len() {
        let lo = &arms[w_idx * loads.len()];
        let hi = &arms[w_idx * loads.len() + loads.len() - 1];
        if hi.report.shed_fraction() + 1e-9 < lo.report.shed_fraction() {
            violations.push(format!(
                "{}: shed fraction fell from {:.3} (load {:.0}) to {:.3} (load {:.0})",
                lo.weather.label(),
                lo.report.shed_fraction(),
                lo.load_qps,
                hi.report.shed_fraction(),
                hi.load_qps,
            ));
        }
    }
    for v in &violations {
        eprintln!("soak invariant violated: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }

    // Advisory (non-fatal, but carried into the report): under each
    // weather, pushing load should not *collapse* delivered throughput.
    // Shedding more is fine — that is the backpressure contract — but
    // if the saturation q/s at the highest load falls below half the
    // best load point, admission control is thrashing rather than
    // protecting the service.
    let mut warn = WarnLog::new();
    for w_idx in 0..weathers.len() {
        let row = &arms[w_idx * loads.len()..(w_idx + 1) * loads.len()];
        let best = row
            .iter()
            .map(|a| saturation_qps(&a.report))
            .fold(0.0f64, f64::max);
        let hi = row.last().expect("each weather has load arms");
        let hi_sat = saturation_qps(&hi.report);
        if hi_sat < 0.5 * best {
            warn.warn(format!(
                "{}: saturation collapsed under load — {:.2} q/s at load \
                 {:.0} vs {:.2} q/s best across loads",
                hi.weather.label(),
                hi_sat,
                hi.load_qps,
                best,
            ));
        }
    }

    let arm_rows: Vec<String> = arms.iter().map(arm_json).collect();
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"soak\",\n",
            "  \"dataset\": \"simpleq\",\n",
            "  \"arrivals_per_arm\": {},\n",
            "  \"trace_seed\": {},\n",
            "  \"fault_seed\": {},\n",
            "  \"arms\": [\n",
            "{}\n",
            "  ],\n",
            "  \"gates\": {{\"zero_panics\": true, ",
            "\"every_admission_answered\": true, ",
            "\"calm_low_load_unshed\": true, ",
            "\"monotone_shed\": true, ",
            "\"worker_count_identity\": true}},\n",
            "  \"warnings\": [{}]\n",
            "}}\n"
        ),
        ARRIVALS,
        TRACE_SEED,
        FAULT_SEED,
        arm_rows.join(",\n"),
        warn.json_array(),
    );
    std::fs::write("BENCH_soak.json", &report).expect("write BENCH_soak.json");
    println!("\n{report}");
    println!(
        "soak ok: {} arms, all gates hold (zero panics, every admission \
         answered, calm low load unshed, monotone shed, 1-vs-8-worker \
         identity) — BENCH_soak.json written",
        arms.len()
    );
}
