//! Perf bench: the retrieval fast path measured end to end, with every
//! speedup gated on bit-identical results.
//!
//! Four sections, each an exact-vs-fast pair:
//!
//! * **build** — serial vs parallel [`BaseIndex`] construction over the
//!   QALD-10 question union (byte-identical output asserted);
//! * **retrieval** — exact scan vs pruned (token-postings + verified
//!   ceiling) top-k over every indexed verbalisation as a self-query
//!   (bit-identical hits asserted);
//! * **scoring** — pure-f32 scan vs int8 screen + margin rerank over
//!   the full base, one self-query per stored vector (bit-identical
//!   hits asserted; screen/rerank breakdown and f32 vs f32+i8 index
//!   bytes reported);
//! * **batched** — the query-tiled quantized kernel vs one sequential
//!   scan per query, at batch widths 1/4/8/16 over the full base
//!   (per-query results bit-identical to the sequential engine
//!   asserted at every width);
//! * **sharded** — the segmented base at 1/2/7 shards, plus an on-disk
//!   write → checksum-verified reopen of the finest sharding, against
//!   the unsharded in-RAM engines across the full retrieval × scoring
//!   × batch cross product (bit-identical hits asserted everywhere);
//! * **scaling** — the 10k/100k/1M curve over a scaled world: serial
//!   segmented build time, the virtual 8-thread build makespan (each
//!   phase the parallel build distributes re-timed in its chunk layout
//!   — wall time cannot show parallel speedup on a single-core box,
//!   the chunk schedule can), bytes on disk, resident bytes after a zero-copy
//!   reopen, mean query latency on the opened index, and sharded +
//!   reopened scans asserted bit-identical to a fresh unsharded
//!   in-RAM reference at every point (≥2x virtual build speedup gated
//!   at 100k and above);
//! * **entity** — the alias-folding entity index probed over the live
//!   base: fold statistics, tier-0 candidate sizes, and the
//!   entity-disjoint ceiling re-calibrated empirically (the maximum
//!   exact dot of any document sharing a token but no folded entity
//!   with a query — the phase-B soundness bound, hard-gated under
//!   [`semvec::ENTITY_DISJOINT_CEILING`] on every run);
//! * **end-to-end** — the full pipeline in exact vs pruned mode (both
//!   batched) plus a pruned per-query arm and a token-only arm
//!   (`entity_gate = 0`, isolating what entity routing buys), each run
//!   cold (fresh query-embedding cache) then warm (same base
//!   re-queried), reporting questions/sec, postings-build time, and the
//!   candidate fraction pruning achieved (identical answers asserted
//!   across all arms, gate counters asserted equal between the batched
//!   and per-query pruned arms);
//! * **stages** — the per-stage profile of the exact cold run: virtual
//!   and wall time per pipeline stage (pseudo / ground / verify /
//!   answer / eval) with each stage's share of the virtual total;
//! * **threads sweep** — the question-level runner at 1/2/4/8 worker
//!   threads over a fresh base each, gated on a byte-identical
//!   [`RunResult::identity_key`](pgg_core::RunResult::identity_key) at
//!   every count. Scaling is reported in *virtual makespan* (the
//!   deterministic list-schedule bound over per-question virtual
//!   costs): wall time cannot show parallel speedup on a single-core
//!   CI box, the virtual schedule can — and it is reproducible.
//!
//! Usage:
//! * `cargo run --release -p bench --bin perf` — full run; writes
//!   `BENCH_perf.json` and exits nonzero on any divergence;
//! * `cargo run --release -p bench --bin perf -- --smoke` — the CI
//!   smoke: reduced sizes, same identity assertions, no JSON file.

use bench::run_or_exit as run;
use bench::warn::{json_escape, WarnLog};
use bench::{model, setup, Experiment};
use pgg_core::{
    BaseIndex, BatchMode, PipelineConfig, PseudoGraphPipeline, RetrievalMode, ScoringMode, StageAgg,
};
use semvec::{
    BatchSlot, Embedder, HybridIndex, NoisyQuery, QueryStyle, ScreenStats, SegmentedIndex,
};
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

struct BuildTiming {
    docs: usize,
    threads: usize,
    build_threads_used: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

/// Serial vs parallel index build over the same question set; panics
/// (→ nonzero exit) if the outputs differ in any byte.
fn bench_build(exp: &Experiment, dataset: &worldgen::Dataset) -> (BuildTiming, BaseIndex) {
    let questions: Vec<&str> = dataset.questions.iter().map(|q| q.text.as_str()).collect();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let t = Instant::now();
    let serial = BaseIndex::for_questions_with_threads(
        &exp.wikidata,
        &exp.embedder,
        &exp.cfg,
        questions.iter().copied(),
        1,
    );
    let serial_ms = ms(t);

    let t = Instant::now();
    let parallel = BaseIndex::for_questions_with_threads(
        &exp.wikidata,
        &exp.embedder,
        &exp.cfg,
        questions.iter().copied(),
        threads,
    );
    let parallel_ms = ms(t);

    assert_eq!(serial.verbalised, parallel.verbalised, "build diverged");
    assert_eq!(serial.subjects, parallel.subjects, "build diverged");
    for id in 0..serial.len() {
        assert_eq!(
            serial.vector(id),
            parallel.vector(id),
            "build diverged at vector {id}"
        );
    }
    (
        BuildTiming {
            docs: serial.len(),
            threads,
            build_threads_used: parallel.build_threads_used(),
            serial_ms,
            parallel_ms,
        },
        parallel,
    )
}

struct RetrievalTiming {
    queries: usize,
    exact_ms: f64,
    pruned_ms: f64,
    identical: bool,
}

/// Exact vs pruned retrieval over `queries` self-queries (every indexed
/// verbalisation queried back at the pipeline's k and jitter).
fn bench_retrieval(exp: &Experiment, base: &BaseIndex, queries: usize) -> RetrievalTiming {
    let texts: Vec<String> = base
        .verbalised
        .iter()
        .take(queries)
        .map(|t| t.sentence())
        .collect();
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);

    let arm = |mode: RetrievalMode| {
        let t = Instant::now();
        let hits: Vec<_> = texts
            .iter()
            .map(|q| {
                let salt = kgstore::hash::stable_str_hash(q);
                base.search(
                    &exp.embedder,
                    q,
                    QueryStyle::Folded,
                    k,
                    sigma,
                    salt,
                    mode,
                    ScoringMode::ExactF32,
                )
            })
            .collect();
        (ms(t), hits)
    };
    let (exact_ms, exact) = arm(RetrievalMode::Exact);
    let (pruned_ms, pruned) = arm(RetrievalMode::Pruned);
    RetrievalTiming {
        queries: texts.len(),
        exact_ms,
        pruned_ms,
        identical: exact == pruned,
    }
}

struct ScoringTiming {
    queries: usize,
    exact_ms: f64,
    quant_ms: f64,
    stats: ScreenStats,
    identical: bool,
    bytes_f32: usize,
    bytes_with_quant: usize,
}

/// Pure-f32 scan vs int8 screen + exact rerank, measured at the vector
/// index (no query encoding in either arm, so the ratio is the scoring
/// kernel alone): every stored vector queried back against the full
/// base at the pipeline's k and jitter.
fn bench_scoring(exp: &Experiment, base: &BaseIndex, queries: usize) -> ScoringTiming {
    let vecs = base.segmented();
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);
    let n = queries.min(vecs.len());

    let t = Instant::now();
    let exact: Vec<_> = (0..n)
        .map(|id| vecs.top_k_noisy(vecs.vector(id), k, sigma, id as u64))
        .collect();
    let exact_ms = ms(t);

    let mut stats = ScreenStats::default();
    let t = Instant::now();
    let quant: Vec<_> = (0..n)
        .map(|id| {
            let (hits, s) = vecs.top_k_noisy_quant(vecs.vector(id), k, sigma, id as u64);
            stats.absorb(s);
            hits
        })
        .collect();
    let quant_ms = ms(t);

    ScoringTiming {
        queries: n,
        exact_ms,
        quant_ms,
        stats,
        identical: exact == quant,
        bytes_f32: vecs.bytes_f32(),
        bytes_with_quant: vecs.bytes_with_quant(),
    }
}

struct BatchedWidth {
    width: usize,
    batch_ms: f64,
}

struct BatchedTiming {
    queries: usize,
    seq_ms: f64,
    widths: Vec<BatchedWidth>,
    identical: bool,
}

/// The query-tiled quantized kernel vs one sequential quantized scan
/// per query: every stored vector queried back against the full base,
/// the batched engine fed in chunks of each width. Every width's
/// per-query (hits, screen stats) must be bit-identical to the
/// sequential engine's.
fn bench_batched(exp: &Experiment, base: &BaseIndex, queries: usize) -> BatchedTiming {
    let vecs = base.segmented();
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);
    let n = queries.min(vecs.len());

    let t = Instant::now();
    let seq: Vec<_> = (0..n)
        .map(|id| vecs.top_k_noisy_quant(vecs.vector(id), k, sigma, id as u64))
        .collect();
    let seq_ms = ms(t);

    let mut widths = Vec::new();
    let mut identical = true;
    for width in [1usize, 4, 8, 16] {
        let t = Instant::now();
        let mut batched = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + width).min(n);
            let slots: Vec<NoisyQuery<'_>> = (start..end)
                .map(|id| NoisyQuery {
                    vector: vecs.vector(id),
                    salt: id as u64,
                })
                .collect();
            batched.extend(vecs.top_k_noisy_quant_batch(&slots, k, sigma));
            start = end;
        }
        let batch_ms = ms(t);
        identical &= batched.len() == seq.len()
            && batched
                .iter()
                .zip(&seq)
                .all(|((bh, bs), (sh, ss))| bh == sh && bs == ss);
        widths.push(BatchedWidth { width, batch_ms });
    }
    BatchedTiming {
        queries: n,
        seq_ms,
        widths,
        identical,
    }
}

struct ShardedIdentity {
    queries: usize,
    shard_counts: Vec<usize>,
    identical: bool,
}

/// One sharded index against the unsharded engines over `sample`
/// self-queries: full exact + quant scans (sequential and batched)
/// against the flat vector index, pruned exact + quant scans
/// (sequential and batched) against the hybrid index, with candidate
/// sets asserted equal first. Hits must be bit-identical everywhere;
/// quant screen counters are compared only at one segment, where the
/// sharded margin is the unsharded one (at several segments the
/// `B_max` margin may rerank more — never fewer — docs, which changes
/// counters but provably not hits).
fn sharded_scans_match(
    embedder: &Embedder,
    unsharded: &HybridIndex,
    seg: &SegmentedIndex,
    texts: &[&str],
    sample: &[usize],
    k: usize,
    sigma: f32,
) -> bool {
    let flat = unsharded.vectors();
    let single = seg.num_segments() <= 1;
    let mut ok = true;

    // Sequential full scans.
    for &id in sample {
        let (q, salt) = (flat.vector(id), id as u64);
        ok &= seg.top_k_noisy(q, k, sigma, salt) == flat.top_k_noisy(q, k, sigma, salt);
        let (sh, ss) = seg.top_k_noisy_quant(q, k, sigma, salt);
        let (fh, fs) = flat.top_k_noisy_quant(q, k, sigma, salt);
        ok &= sh == fh && (!single || ss == fs);
    }

    // Batched full scans, one tile over the whole sample.
    let slots: Vec<NoisyQuery<'_>> = sample
        .iter()
        .map(|&id| NoisyQuery {
            vector: flat.vector(id),
            salt: id as u64,
        })
        .collect();
    ok &= seg.top_k_noisy_batch(&slots, k, sigma) == flat.top_k_noisy_batch(&slots, k, sigma);
    let sbq = seg.top_k_noisy_quant_batch(&slots, k, sigma);
    let fbq = flat.top_k_noisy_quant_batch(&slots, k, sigma);
    ok &= sbq.len() == fbq.len()
        && sbq
            .iter()
            .zip(&fbq)
            .all(|((sh, ss), (fh, fs))| sh == fh && (!single || ss == fs));

    // Pruned scans over the candidate sets the live pipeline would
    // use — per-segment postings must partition the global lists, so
    // the candidate ids themselves are asserted equal first.
    let cand_sets: Vec<Vec<u32>> = sample
        .iter()
        .map(|&id| {
            let c = unsharded.candidates(embedder, texts[id], QueryStyle::Folded);
            ok &= seg.candidates(embedder, texts[id], QueryStyle::Folded) == c;
            c
        })
        .collect();
    for (i, &id) in sample.iter().enumerate() {
        let (q, salt) = (flat.vector(id), id as u64);
        let c = &cand_sets[i];
        ok &= seg.top_k_noisy_encoded(q, c, k, sigma, salt)
            == unsharded.top_k_noisy_encoded(q, c, k, sigma, salt);
        let (sh, _) = seg.top_k_noisy_encoded_quant(q, c, k, sigma, salt);
        let (fh, _) = unsharded.top_k_noisy_encoded_quant(q, c, k, sigma, salt);
        ok &= sh == fh;
    }
    let bslots: Vec<BatchSlot<'_>> = sample
        .iter()
        .enumerate()
        .map(|(i, &id)| BatchSlot {
            query: flat.vector(id),
            cands: &cand_sets[i],
            salt: id as u64,
        })
        .collect();
    ok &= seg.top_k_noisy_encoded_batch(&bslots, k, sigma)
        == unsharded.top_k_noisy_encoded_batch(&bslots, k, sigma);
    let (sq, _) = seg.top_k_noisy_encoded_quant_batch(&bslots, k, sigma);
    let (fq, _) = unsharded.top_k_noisy_encoded_quant_batch(&bslots, k, sigma);
    ok &= sq == fq;
    ok
}

/// The segmented base at 1/2/7 shards vs the unsharded in-RAM engines
/// over the live base corpus, plus an on-disk write → checksum-verified
/// reopen of the finest sharding re-run through the same cross product.
fn bench_sharded_identity(exp: &Experiment, base: &BaseIndex, queries: usize) -> ShardedIdentity {
    let sentences: Vec<String> = base.verbalised.iter().map(|t| t.sentence()).collect();
    let texts: Vec<&str> = sentences.iter().map(|s| s.as_str()).collect();
    let unsharded = HybridIndex::build(&exp.embedder, texts.iter().copied());
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);
    let n = queries.min(texts.len()).max(1);
    let step = (texts.len() / n).max(1);
    let sample: Vec<usize> = (0..texts.len()).step_by(step).take(n).collect();

    let len = texts.len().max(1);
    let shard_rows = [len, len.div_ceil(2), len.div_ceil(7)];
    let mut identical = true;
    let mut shard_counts = Vec::new();
    for (i, &rows) in shard_rows.iter().enumerate() {
        let seg = SegmentedIndex::build_parallel(&exp.embedder, &texts, rows, 0);
        shard_counts.push(seg.num_segments());
        identical &=
            sharded_scans_match(&exp.embedder, &unsharded, &seg, &texts, &sample, k, sigma);
        if i == shard_rows.len() - 1 {
            // The finest sharding additionally round-trips through disk.
            let path = std::env::temp_dir().join("pgg-perf-sharded.seg");
            seg.write_to(&path).expect("write sharded index");
            let opened = SegmentedIndex::open(&path).expect("reopen sharded index");
            let _ = std::fs::remove_file(&path);
            identical &= opened.is_file_backed();
            identical &= sharded_scans_match(
                &exp.embedder,
                &unsharded,
                &opened,
                &texts,
                &sample,
                k,
                sigma,
            );
        }
    }
    ShardedIdentity {
        queries: sample.len(),
        shard_counts,
        identical,
    }
}

struct ScalingRow {
    docs: usize,
    unique_docs: usize,
    segments: usize,
    build_serial_ms: f64,
    build_virtual_parallel_ms: f64,
    build_speedup: f64,
    build_threads_used: usize,
    disk_bytes: u64,
    resident_bytes: usize,
    query_ms: f64,
    identical: bool,
}

/// Verbalised wikidata-style triples of a world scaled until its
/// derived source covers `max_docs` sentences. Scale 1.0 is the
/// experiment world; larger corpora regenerate deterministically at
/// the smallest tried scale whose source is big enough.
fn scaling_corpus(exp: &Experiment, max_docs: usize) -> Vec<String> {
    let per_scale = exp.wikidata.store.len().max(1);
    let mut scale = (max_docs as f64 / per_scale as f64 * 1.15).max(1.0);
    loop {
        let world = worldgen::generate(&worldgen::WorldConfig {
            seed: pgg_core::paper::WORLD_SEED,
            scale,
            ..worldgen::WorldConfig::default()
        });
        let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
        if source.store.len() >= max_docs || scale > 1e4 {
            return (0..source.store.len().min(max_docs))
                .map(|i| {
                    source
                        .verbalize(source.store.get(kgstore::TripleId(i as u32)))
                        .sentence()
                })
                .collect();
        }
        scale *= 1.5;
    }
}

/// The scaling curve: one row per corpus size. Identity at each point
/// compares the built and the reopened segmented index against a fresh
/// unsharded in-RAM scan on a spread query sample (exact and quantized
/// paths; the full mode cross product is gated by the sharded section
/// and the semvec proptests).
fn bench_scaling(exp: &Experiment, sizes: &[usize], k: usize, sigma: f32) -> Vec<ScalingRow> {
    let max_docs = sizes.iter().copied().max().unwrap_or(0);
    let sentences = scaling_corpus(exp, max_docs);
    sizes
        .iter()
        .map(|&size| {
            let n = size.min(sentences.len());
            let texts: Vec<&str> = sentences[..n].iter().map(|s| s.as_str()).collect();

            let t = Instant::now();
            let built =
                SegmentedIndex::build_parallel(&exp.embedder, &texts, semvec::SEG_ROWS_DEFAULT, 1);
            let build_serial_ms = ms(t);

            // Virtual 8-thread makespan, mirroring what build_parallel
            // actually distributes: the dedup slot map stays serial,
            // encoding runs in per-thread chunks over *unique* docs
            // (duplicates encode once), and segment assembly runs in
            // contiguous chunks of ceil(S/8) segments per worker. Each
            // phase is re-timed here; the makespan is serial prefix +
            // longest encode chunk + the worst worker's assembly share
            // of the remaining (assembly-dominated) serial time.
            let t = Instant::now();
            let mut slot_of_text: std::collections::HashMap<&str, usize> =
                std::collections::HashMap::new();
            let mut unique: Vec<&str> = Vec::new();
            let doc_slots: Vec<usize> = texts
                .iter()
                .map(|&s| {
                    *slot_of_text.entry(s).or_insert_with(|| {
                        unique.push(s);
                        unique.len() - 1
                    })
                })
                .collect();
            std::hint::black_box(&doc_slots);
            let slot_ms = ms(t);

            let mut encode_total_ms = 0.0f64;
            let mut max_chunk_ms = 0.0f64;
            for range in semvec::build_chunk_ranges(unique.len(), 8) {
                let t = Instant::now();
                for s in &unique[range] {
                    std::hint::black_box(semvec::encode_doc(&exp.embedder, s));
                }
                let chunk_ms = ms(t);
                encode_total_ms += chunk_ms;
                max_chunk_ms = max_chunk_ms.max(chunk_ms);
            }

            let seg_rows = semvec::SEG_ROWS_DEFAULT;
            let n_segments = n.div_ceil(seg_rows).max(1);
            // Worker 0 assembles the first ceil(S/8) full-size segments
            // — the longest assembly chunk (the last segment, the only
            // short one, lands on the last worker). Below 2 segments
            // the build keeps assembly serial, so the share is 1.
            let assembly_share = if n_segments < 2 {
                1.0
            } else {
                let chunk = n_segments.div_ceil(8.min(n_segments));
                ((chunk * seg_rows) as f64 / n as f64).min(1.0)
            };
            let residual_ms = (build_serial_ms - slot_ms - encode_total_ms).max(0.0);
            let build_virtual_parallel_ms =
                (slot_ms + max_chunk_ms + residual_ms * assembly_share).max(0.1);

            let path = std::env::temp_dir().join(format!("pgg-perf-scaling-{n}.seg"));
            built.write_to(&path).expect("write scaling index");
            let disk_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let opened = SegmentedIndex::open(&path).expect("reopen scaling index");
            let _ = std::fs::remove_file(&path);

            let spread = if n >= 500_000 {
                12
            } else if n >= 50_000 {
                32
            } else {
                64
            };
            let q = spread.min(n.max(1));
            let step = (n / q).max(1);
            let sample: Vec<usize> = (0..n).step_by(step).take(q).collect();
            let unsharded = HybridIndex::build(&exp.embedder, texts.iter().copied());
            let flat = unsharded.vectors();

            let t = Instant::now();
            let opened_quant: Vec<_> = sample
                .iter()
                .map(|&id| {
                    opened
                        .top_k_noisy_quant(flat.vector(id), k, sigma, id as u64)
                        .0
                })
                .collect();
            let query_ms = ms(t) / sample.len().max(1) as f64;

            let mut identical = true;
            for (i, &id) in sample.iter().enumerate() {
                let (qv, salt) = (flat.vector(id), id as u64);
                let exact = flat.top_k_noisy(qv, k, sigma, salt);
                identical &= opened.top_k_noisy(qv, k, sigma, salt) == exact;
                identical &= built.top_k_noisy(qv, k, sigma, salt) == exact;
                // The quantized contract: bit-identical to the exact scan.
                identical &= opened_quant[i] == exact;
                identical &= built.top_k_noisy_quant(qv, k, sigma, salt).0 == exact;
            }

            ScalingRow {
                docs: n,
                unique_docs: unique.len(),
                segments: built.num_segments(),
                build_serial_ms,
                build_virtual_parallel_ms,
                build_speedup: build_serial_ms / build_virtual_parallel_ms,
                build_threads_used: semvec::resolve_build_threads(unique.len(), 0),
                disk_bytes,
                resident_bytes: opened.resident_bytes(),
                query_ms,
                identical,
            }
        })
        .collect()
}

struct EntityProbe {
    n_entities: usize,
    n_surfaces: usize,
    queries: usize,
    folded_queries: usize,
    tier1_docs_checked: usize,
    max_disjoint_dot: f32,
    ceiling: f32,
    mean_tier0: f64,
    sound: bool,
}

/// Re-calibrate the entity-disjoint ceiling on the live base: for a
/// spread of self-queries, fold the query, take every document that
/// shares a canonical token but mentions none of the folded entities
/// (tier 1 of the entity kernel), and record the maximum exact dot.
/// Phase-B soundness requires that maximum to stay under the compiled
/// [`semvec::ENTITY_DISJOINT_CEILING`]; the bench hard-fails otherwise.
fn probe_entity_ceiling(exp: &Experiment, base: &BaseIndex, sample_n: usize) -> EntityProbe {
    let vecs = base.segmented();
    let ent = vecs
        .entity_index()
        .expect("every pipeline base carries an entity index");
    let texts: Vec<String> = base.verbalised.iter().map(|t| t.sentence()).collect();
    let n = sample_n.min(texts.len()).max(1);
    let step = (texts.len() / n).max(1);

    let mut max_disjoint_dot = 0.0f32;
    let mut folded_queries = 0usize;
    let mut tier1_docs_checked = 0usize;
    let mut tier0_total = 0usize;
    let mut queries = 0usize;
    for text in texts.iter().step_by(step).take(n) {
        queries += 1;
        let fold = ent.fold(&exp.embedder, text);
        if fold.entities.is_empty() {
            continue;
        }
        folded_queries += 1;
        let ents = ent.doc_candidates(&fold.entities);
        tier0_total += ents.len();
        let toks = vecs.candidates(&exp.embedder, text, QueryStyle::Folded);
        let tier1 = semvec::minus_sorted(&toks, &ents);
        tier1_docs_checked += tier1.len();
        let q = exp.embedder.encode(text);
        for &id in &tier1 {
            max_disjoint_dot = max_disjoint_dot.max(semvec::dot(&q, vecs.vector(id as usize)));
        }
    }
    EntityProbe {
        n_entities: ent.n_entities(),
        n_surfaces: ent.n_surfaces(),
        queries,
        folded_queries,
        tier1_docs_checked,
        max_disjoint_dot,
        ceiling: ent.ceiling(),
        mean_tier0: tier0_total as f64 / folded_queries.max(1) as f64,
        sound: max_disjoint_dot < ent.ceiling(),
    }
}

struct E2eArm {
    mode: &'static str,
    batch: &'static str,
    build_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    cand_fraction: f64,
    gate_fallbacks: u64,
    mean_batch_width: f64,
    dedup_rate: f64,
    entity_queries: u64,
    entity_route_rate: f64,
    entity_cand_fraction: f64,
    fold_hit_rate: f64,
    entity_folded: u64,
    entity_tier1: u64,
    route_memo_hits: u64,
    pruned_queries: u64,
    pruned_candidates: u64,
    answers: Vec<String>,
    stage_totals: Vec<(String, StageAgg)>,
}

/// Full pipeline on QALD-10, one (retrieval mode, batch mode, entity
/// gate) arm: cold run on a fresh base (empty query-embedding cache),
/// then a warm re-run on the same. `label` names the arm in the report
/// (the token-only arm is still `RetrievalMode::Pruned`, with the
/// entity route disabled by `entity_gate = 0`).
fn e2e_arm(
    exp: &Experiment,
    dataset: &worldgen::Dataset,
    mode: RetrievalMode,
    batch: BatchMode,
    entity_gate: f32,
    label: &'static str,
) -> E2eArm {
    let cfg = PipelineConfig {
        retrieval_mode: mode,
        batch_mode: batch,
        entity_gate,
        ..exp.cfg.clone()
    };
    let t = Instant::now();
    let base = BaseIndex::for_questions(
        &exp.wikidata,
        &exp.embedder,
        &cfg,
        dataset.questions.iter().map(|q| q.text.as_str()),
    );
    let build_ms = ms(t);
    let llm = model(&exp.world, "gpt-3.5");
    let pipeline = PseudoGraphPipeline::full();

    let t = Instant::now();
    let cold = run(
        &pipeline,
        &llm,
        Some(&exp.wikidata),
        Some(&base),
        &exp.embedder,
        &cfg,
        dataset,
        0,
    );
    let cold_ms = ms(t);

    let t = Instant::now();
    let warm = run(
        &pipeline,
        &llm,
        Some(&exp.wikidata),
        Some(&base),
        &exp.embedder,
        &cfg,
        dataset,
        0,
    );
    let warm_ms = ms(t);

    let answers: Vec<String> = cold.records.iter().map(|r| r.answer.clone()).collect();
    let warm_answers: Vec<String> = warm.records.iter().map(|r| r.answer.clone()).collect();
    assert_eq!(
        answers, warm_answers,
        "warm cache changed answers in {mode:?} mode"
    );
    let stats = base.cache_stats();
    let scoring = base.scoring_stats();
    E2eArm {
        mode: label,
        batch: match batch {
            BatchMode::Batched => "batched",
            BatchMode::PerQuery => "per-query",
        },
        build_ms,
        cold_ms,
        warm_ms,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cand_fraction: scoring.candidate_fraction(base.len()),
        gate_fallbacks: scoring.gate_fallbacks,
        mean_batch_width: scoring.mean_batch_width(),
        dedup_rate: scoring.dedup_rate(),
        entity_queries: scoring.entity_queries,
        entity_route_rate: scoring.entity_route_rate(),
        entity_cand_fraction: scoring.entity_candidate_fraction(base.len()),
        fold_hit_rate: scoring.fold_hit_rate(),
        entity_folded: scoring.entity_folded,
        entity_tier1: scoring.entity_tier1,
        route_memo_hits: scoring.route_memo_hits,
        pruned_queries: scoring.pruned_queries,
        pruned_candidates: scoring.pruned_candidates,
        answers,
        stage_totals: cold.stage_totals(),
    }
}

struct ThreadsArm {
    threads: usize,
    wall_cold_ms: f64,
    virtual_makespan_ms: u64,
    identical: bool,
}

/// The question-level runner swept over worker-thread counts, each on a
/// fresh base (cold caches, so arms are comparable). Every count must
/// reproduce the 1-thread run byte for byte (`identity_key` digests
/// answers, scores, traces, fault ledgers, and stage timings — wall
/// nanoseconds excluded, the one schedule-dependent field). Scaling is
/// the *virtual makespan*: the deterministic list-schedule length of
/// the per-question virtual costs over `threads` workers.
fn threads_sweep(
    exp: &Experiment,
    dataset: &worldgen::Dataset,
    counts: &[usize],
) -> Vec<ThreadsArm> {
    let llm = model(&exp.world, "gpt-3.5");
    let pipeline = PseudoGraphPipeline::full();
    let mut reference: Option<u64> = None;
    counts
        .iter()
        .map(|&threads| {
            let base = BaseIndex::for_questions(
                &exp.wikidata,
                &exp.embedder,
                &exp.cfg,
                dataset.questions.iter().map(|q| q.text.as_str()),
            );
            let t = Instant::now();
            let res = run(
                &pipeline,
                &llm,
                Some(&exp.wikidata),
                Some(&base),
                &exp.embedder,
                &exp.cfg,
                dataset,
                threads,
            );
            let wall_cold_ms = ms(t);
            let key = res.identity_key();
            let identical = *reference.get_or_insert(key) == key;
            ThreadsArm {
                threads,
                wall_cold_ms,
                virtual_makespan_ms: res.virtual_makespan_ms(threads),
                identical,
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // one argument per report section
fn json_report(
    build: &BuildTiming,
    retr: &RetrievalTiming,
    scoring: &ScoringTiming,
    batched: &BatchedTiming,
    sharded: &ShardedIdentity,
    scaling: &[ScalingRow],
    entity: &EntityProbe,
    arms: &[E2eArm],
    sweep: &[ThreadsArm],
    questions: usize,
    k: usize,
    sigma: f32,
    warnings: &[String],
) -> String {
    // Hand-formatted: the report layout is fixed and flat, and keeping
    // the encoder trivial means the bench has no serializer in its hot
    // or cold path to misattribute time to.
    let width_json: Vec<String> = batched
        .widths
        .iter()
        .map(|w| {
            format!(
                "    {{\"width\": {}, \"batch_ms\": {:.1}, \"speedup\": {:.2}}}",
                w.width,
                w.batch_ms,
                batched.seq_ms / w.batch_ms,
            )
        })
        .collect();
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"docs\": {}, \"unique_docs\": {}, \"segments\": {}, ",
                    "\"build_serial_ms\": {:.1}, \"build_virtual_parallel_ms\": {:.1}, ",
                    "\"build_speedup\": {:.2}, \"build_threads_used\": {}, ",
                    "\"disk_bytes\": {}, \"resident_bytes\": {}, ",
                    "\"query_ms\": {:.3}, \"identical\": {}}}"
                ),
                r.docs,
                r.unique_docs,
                r.segments,
                r.build_serial_ms,
                r.build_virtual_parallel_ms,
                r.build_speedup,
                r.build_threads_used,
                r.disk_bytes,
                r.resident_bytes,
                r.query_ms,
                r.identical,
            )
        })
        .collect();
    let arm_json: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                concat!(
                    "    {{\"mode\": \"{}\", \"batch\": \"{}\", \"build_ms\": {:.1}, ",
                    "\"cold_ms\": {:.1}, \"warm_ms\": {:.1}, ",
                    "\"cold_qps\": {:.2}, \"warm_qps\": {:.2}, ",
                    "\"cache_hits\": {}, \"cache_misses\": {}, ",
                    "\"cand_fraction\": {:.4}, \"gate_fallbacks\": {}, ",
                    "\"mean_batch_width\": {:.2}, ",
                    "\"dedup_rate\": {:.4}, ",
                    "\"entity_queries\": {}, \"entity_route_rate\": {:.4}, ",
                    "\"entity_cand_fraction\": {:.4}, \"fold_hit_rate\": {:.4}, ",
                    "\"route_memo_hits\": {}}}"
                ),
                a.mode,
                a.batch,
                a.build_ms,
                a.cold_ms,
                a.warm_ms,
                questions as f64 / (a.cold_ms / 1e3),
                questions as f64 / (a.warm_ms / 1e3),
                a.cache_hits,
                a.cache_misses,
                a.cand_fraction,
                a.gate_fallbacks,
                a.mean_batch_width,
                a.dedup_rate,
                a.entity_queries,
                a.entity_route_rate,
                a.entity_cand_fraction,
                a.fold_hit_rate,
                a.route_memo_hits,
            )
        })
        .collect();
    let entity_arm = arms
        .iter()
        .find(|a| a.mode == "pruned" && a.batch == "batched")
        .expect("pruned batched arm present");
    let token_arm = arms
        .iter()
        .find(|a| a.mode == "pruned-token")
        .expect("token-only arm present");
    let stage_rows = &arms[0].stage_totals;
    let virtual_total: u64 = stage_rows.iter().map(|(_, agg)| agg.virtual_ms).sum();
    let stage_json: Vec<String> = stage_rows
        .iter()
        .map(|(stage, agg)| {
            format!(
                concat!(
                    "    {{\"stage\": \"{}\", \"questions\": {}, \"virtual_ms\": {}, ",
                    "\"wall_ms\": {:.1}, \"virtual_share\": {:.4}}}"
                ),
                json_escape(stage),
                agg.questions,
                agg.virtual_ms,
                agg.wall_ns as f64 / 1e6,
                agg.virtual_ms as f64 / virtual_total.max(1) as f64,
            )
        })
        .collect();
    let base_makespan = sweep.first().map_or(1, |a| a.virtual_makespan_ms.max(1));
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|a| {
            format!(
                concat!(
                    "    {{\"threads\": {}, \"wall_cold_ms\": {:.1}, ",
                    "\"virtual_makespan_ms\": {}, \"virtual_qps\": {:.2}, ",
                    "\"virtual_speedup\": {:.2}, \"identical\": {}}}"
                ),
                a.threads,
                a.wall_cold_ms,
                a.virtual_makespan_ms,
                questions as f64 / (a.virtual_makespan_ms.max(1) as f64 / 1e3),
                base_makespan as f64 / a.virtual_makespan_ms.max(1) as f64,
                a.identical,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf\",\n",
            "  \"dataset\": \"qald\",\n",
            "  \"source\": \"wikidata\",\n",
            "  \"build\": {{\"docs\": {}, \"threads\": {}, ",
            "\"build_threads_used\": {}, \"serial_ms\": {:.1}, ",
            "\"parallel_ms\": {:.1}, \"speedup\": {:.2}, \"identical\": true}},\n",
            "  \"retrieval\": {{\"queries\": {}, \"k\": {}, \"sigma\": {:.2}, ",
            "\"exact_ms\": {:.1}, \"pruned_ms\": {:.1}, \"speedup\": {:.2}, ",
            "\"identical\": {}}},\n",
            "  \"scoring\": {{\"queries\": {}, \"k\": {}, \"sigma\": {:.2}, ",
            "\"exact_f32_ms\": {:.1}, \"quant_ms\": {:.1}, \"speedup\": {:.2}, ",
            "\"screened\": {}, \"reranked\": {}, \"rerank_rate\": {:.4}, ",
            "\"bytes_f32\": {}, \"bytes_with_quant\": {}, \"identical\": {}}},\n",
            "  \"batched\": {{\"queries\": {}, \"k\": {}, \"sigma\": {:.2}, ",
            "\"seq_ms\": {:.1}, \"identical\": {}, \"widths\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"sharded\": {{\"queries\": {}, \"shard_counts\": [{}], ",
            "\"on_disk_reopen\": true, \"identical\": {}}},\n",
            "  \"scaling\": {{\"k\": {}, \"sigma\": {:.2}, \"rows\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"entity\": {{\"n_entities\": {}, \"n_surfaces\": {}, ",
            "\"probe_queries\": {}, \"folded_queries\": {}, ",
            "\"tier1_docs_checked\": {}, \"max_disjoint_dot\": {:.3}, ",
            "\"ceiling\": {:.2}, \"mean_tier0_candidates\": {:.1}, ",
            "\"entity_queries\": {}, \"entity_route_rate\": {:.4}, ",
            "\"entity_cand_fraction\": {:.4}, \"fold_hit_rate\": {:.4}, ",
            "\"folded_entities\": {}, \"tier1_candidates\": {}, ",
            "\"route_memo_hits\": {}, \"token_only_cand_fraction\": {:.4}, ",
            "\"sound\": {}}},\n",
            "  \"e2e\": {{\"questions\": {}, \"answers_identical\": true, \"arms\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"stages\": {{\"questions\": {}, \"arm\": \"{} {}\", ",
            "\"virtual_total_ms\": {}, \"rows\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"threads_sweep\": {{\"questions\": {}, \"answers_identical\": {}, ",
            "\"counts\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"warnings\": [{}]\n",
            "}}\n"
        ),
        build.docs,
        build.threads,
        build.build_threads_used,
        build.serial_ms,
        build.parallel_ms,
        build.serial_ms / build.parallel_ms,
        retr.queries,
        k,
        sigma,
        retr.exact_ms,
        retr.pruned_ms,
        retr.exact_ms / retr.pruned_ms,
        retr.identical,
        scoring.queries,
        k,
        sigma,
        scoring.exact_ms,
        scoring.quant_ms,
        scoring.exact_ms / scoring.quant_ms,
        scoring.stats.screened,
        scoring.stats.reranked,
        scoring.stats.rerank_rate(),
        scoring.bytes_f32,
        scoring.bytes_with_quant,
        scoring.identical,
        batched.queries,
        k,
        sigma,
        batched.seq_ms,
        batched.identical,
        width_json.join(",\n"),
        sharded.queries,
        sharded
            .shard_counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        sharded.identical,
        k,
        sigma,
        scaling_json.join(",\n"),
        entity.n_entities,
        entity.n_surfaces,
        entity.queries,
        entity.folded_queries,
        entity.tier1_docs_checked,
        entity.max_disjoint_dot,
        entity.ceiling,
        entity.mean_tier0,
        entity_arm.entity_queries,
        entity_arm.entity_route_rate,
        entity_arm.entity_cand_fraction,
        entity_arm.fold_hit_rate,
        entity_arm.entity_folded,
        entity_arm.entity_tier1,
        entity_arm.route_memo_hits,
        token_arm.cand_fraction,
        entity.sound,
        questions,
        arm_json.join(",\n"),
        questions,
        arms[0].mode,
        arms[0].batch,
        virtual_total,
        stage_json.join(",\n"),
        questions,
        sweep.iter().all(|a| a.identical),
        sweep_json.join(",\n"),
        warnings
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    bench::install_wall_clock();
    let exp = setup(20);
    let (dataset, retr_queries, e2e_questions) = if smoke {
        (&exp.nature, 600, 15)
    } else {
        (&exp.qald, usize::MAX, exp.qald.questions.len())
    };

    let (build, base) = bench_build(&exp, dataset);
    let retr = bench_retrieval(&exp, &base, retr_queries.min(base.len()));
    if !retr.identical {
        eprintln!(
            "perf violation: pruned retrieval diverged from the exact scan \
             over {} self-queries",
            retr.queries
        );
        std::process::exit(1);
    }

    let scoring = bench_scoring(&exp, &base, retr_queries.min(base.len()));
    if !scoring.identical {
        eprintln!(
            "perf violation: quantized screen+rerank diverged from the \
             exact f32 scan over {} self-queries",
            scoring.queries
        );
        std::process::exit(1);
    }

    let batched = bench_batched(&exp, &base, retr_queries.min(base.len()));
    if !batched.identical {
        eprintln!(
            "perf violation: the batched quantized engine diverged from the \
             sequential per-query scan over {} self-queries",
            batched.queries
        );
        std::process::exit(1);
    }

    let sharded = bench_sharded_identity(&exp, &base, if smoke { 150 } else { 400 });
    if !sharded.identical {
        eprintln!(
            "perf violation: a sharded or reopened scan diverged from the \
             in-RAM unsharded engines over {} self-queries at shard counts \
             {:?}",
            sharded.queries, sharded.shard_counts,
        );
        std::process::exit(1);
    }

    let scaling_sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let scaling = bench_scaling(&exp, scaling_sizes, exp.cfg.top_k, exp.cfg.retrieval_jitter);
    for row in &scaling {
        if !row.identical {
            eprintln!(
                "perf violation: the segmented index diverged from the \
                 unsharded scan at {} docs on the scaling curve",
                row.docs,
            );
            std::process::exit(1);
        }
        if row.docs >= 100_000 && row.build_speedup < 2.0 {
            eprintln!(
                "perf violation: virtual parallel build speedup {:.2}x at {} \
                 docs is below the 2x gate (serial {:.0} ms, virtual x8 \
                 {:.0} ms)",
                row.build_speedup, row.docs, row.build_serial_ms, row.build_virtual_parallel_ms,
            );
            std::process::exit(1);
        }
    }

    let entity_probe = probe_entity_ceiling(&exp, &base, if smoke { 200 } else { 834 });
    if !entity_probe.sound {
        eprintln!(
            "perf violation: entity-disjoint ceiling breached — max exact dot \
             {:.3} over {} tier-1 documents ({} folded queries) reaches the \
             compiled ceiling {:.2}; raise semvec::ENTITY_DISJOINT_CEILING",
            entity_probe.max_disjoint_dot,
            entity_probe.tier1_docs_checked,
            entity_probe.folded_queries,
            entity_probe.ceiling,
        );
        std::process::exit(1);
    }

    let e2e_set = worldgen::Dataset {
        kind: dataset.kind,
        questions: dataset.questions[..e2e_questions.min(dataset.questions.len())].to_vec(),
    };
    let default_gate = exp.cfg.entity_gate;
    let exact_arm = e2e_arm(
        &exp,
        &e2e_set,
        RetrievalMode::Exact,
        BatchMode::Batched,
        default_gate,
        "exact",
    );
    let pruned_arm = e2e_arm(
        &exp,
        &e2e_set,
        RetrievalMode::Pruned,
        BatchMode::Batched,
        default_gate,
        "pruned",
    );
    let perquery_arm = e2e_arm(
        &exp,
        &e2e_set,
        RetrievalMode::Pruned,
        BatchMode::PerQuery,
        default_gate,
        "pruned",
    );
    let token_arm = e2e_arm(
        &exp,
        &e2e_set,
        RetrievalMode::Pruned,
        BatchMode::Batched,
        0.0,
        "pruned-token",
    );
    if exact_arm.answers != pruned_arm.answers {
        eprintln!("perf violation: pruned mode changed end-to-end answers");
        std::process::exit(1);
    }
    if pruned_arm.answers != perquery_arm.answers {
        eprintln!("perf violation: batched mode changed end-to-end answers");
        std::process::exit(1);
    }
    if token_arm.answers != pruned_arm.answers {
        eprintln!("perf violation: the entity route changed end-to-end answers");
        std::process::exit(1);
    }
    // The route memo decides each unique (style, relax, text) key once,
    // so the batched and per-query arms must ledger identical gate
    // counters over the same workload — fan-out duplicates included.
    if (
        pruned_arm.gate_fallbacks,
        pruned_arm.pruned_queries,
        pruned_arm.pruned_candidates,
        pruned_arm.entity_queries,
    ) != (
        perquery_arm.gate_fallbacks,
        perquery_arm.pruned_queries,
        perquery_arm.pruned_candidates,
        perquery_arm.entity_queries,
    ) {
        eprintln!(
            "perf violation: batched vs per-query gate counters diverged \
             (fallbacks {} vs {}, pruned {} vs {}, candidates {} vs {}, \
             entity {} vs {})",
            pruned_arm.gate_fallbacks,
            perquery_arm.gate_fallbacks,
            pruned_arm.pruned_queries,
            perquery_arm.pruned_queries,
            pruned_arm.pruned_candidates,
            perquery_arm.pruned_candidates,
            pruned_arm.entity_queries,
            perquery_arm.entity_queries,
        );
        std::process::exit(1);
    }
    let mut warn = WarnLog::new();
    // Each arm ran twice (cold, then warm on the same base); both arms
    // warm identically, so comparing each arm's best run damps one-off
    // scheduler stalls that a single cold measurement is exposed to. A
    // real regression slows both of an arm's runs and still trips this.
    let pruned_best_ms = pruned_arm.cold_ms.min(pruned_arm.warm_ms);
    let exact_best_ms = exact_arm.cold_ms.min(exact_arm.warm_ms);
    warn.slower_than(pruned_best_ms, exact_best_ms, 0.05, || {
        format!(
            "pruned e2e underperforms exact (best-of-2 {:.2} q/s vs {:.2} q/s, \
             candidate fraction {:.3}, {} gate fallbacks) — the adaptive gate \
             is letting unprofitable pruning through on this corpus",
            e2e_set.questions.len() as f64 / (pruned_best_ms / 1e3),
            e2e_set.questions.len() as f64 / (exact_best_ms / 1e3),
            pruned_arm.cand_fraction,
            pruned_arm.gate_fallbacks,
        )
    });

    let sweep = threads_sweep(&exp, &e2e_set, &[1, 2, 4, 8]);
    if let Some(bad) = sweep.iter().find(|a| !a.identical) {
        eprintln!(
            "perf violation: the {}-thread runner diverged from the 1-thread \
             run (identity key mismatch over {} questions)",
            bad.threads,
            e2e_set.questions.len(),
        );
        std::process::exit(1);
    }
    let makespan_1 = sweep[0].virtual_makespan_ms.max(1);
    let makespan_8 = sweep
        .last()
        .expect("sweep has arms")
        .virtual_makespan_ms
        .max(1);
    let virtual_speedup_8 = makespan_1 as f64 / makespan_8 as f64;
    if !smoke && virtual_speedup_8 < 4.0 {
        eprintln!(
            "perf violation: 8-thread virtual speedup {virtual_speedup_8:.2}x \
             is below the 4x gate (makespan {makespan_1} ms at 1 thread vs \
             {makespan_8} ms at 8)"
        );
        std::process::exit(1);
    }
    let stage_desc = exact_arm
        .stage_totals
        .iter()
        .map(|(stage, agg)| format!("{stage}={}", agg.virtual_ms))
        .collect::<Vec<_>>()
        .join(" ");

    let retrieval_speedup = retr.exact_ms / retr.pruned_ms;
    let scoring_speedup = scoring.exact_ms / scoring.quant_ms;
    let batched_w8 = batched
        .widths
        .iter()
        .find(|w| w.width == 8)
        .map_or(1.0, |w| batched.seq_ms / w.batch_ms);
    if smoke {
        println!(
            "perf smoke ok: docs={} build byte-identical ({:.0}ms serial / {:.0}ms \
             x{}), retrieval bit-identical over {} queries (speedup {:.2}), \
             scoring bit-identical over {} queries (speedup {:.2}, rerank rate \
             {:.4}), batched kernel bit-identical over {} queries at widths \
             1/4/8/16 (w8 speedup {:.2}), e2e answers identical across modes, \
             batch modes, and cache states",
            build.docs,
            build.serial_ms,
            build.parallel_ms,
            build.threads,
            retr.queries,
            retrieval_speedup,
            scoring.queries,
            scoring_speedup,
            scoring.stats.rerank_rate(),
            batched.queries,
            batched_w8,
        );
        println!(
            "perf smoke sharded base ok: shard counts {:?} + on-disk reopen \
             bit-identical to the in-RAM unsharded scan over {} self-queries \
             across full/pruned x f32/quant x sequential/batched modes",
            sharded.shard_counts, sharded.queries,
        );
        for row in &scaling {
            println!(
                "perf smoke scaling ok: {} docs ({} unique) in {} segments, \
                 serial build {:.0}ms (virtual x8 {:.0}ms, speedup {:.2}, \
                 self-tuned threads {}), {} bytes on disk, {} resident after \
                 reopen, {:.3}ms/query, identity ok",
                row.docs,
                row.unique_docs,
                row.segments,
                row.build_serial_ms,
                row.build_virtual_parallel_ms,
                row.build_speedup,
                row.build_threads_used,
                row.disk_bytes,
                row.resident_bytes,
                row.query_ms,
            );
        }
        println!(
            "perf smoke entity index ok: {} entities / {} surfaces, {} of {} \
             probe queries folded (mean tier-0 {:.1} docs), max entity-disjoint \
             dot {:.3} under ceiling {:.2} over {} tier-1 docs; e2e entity arm \
             routed {} queries (route rate {:.3}, cand fraction {:.4}, token-only \
             {:.4}), gate counters batched == per-query",
            entity_probe.n_entities,
            entity_probe.n_surfaces,
            entity_probe.folded_queries,
            entity_probe.queries,
            entity_probe.mean_tier0,
            entity_probe.max_disjoint_dot,
            entity_probe.ceiling,
            entity_probe.tier1_docs_checked,
            pruned_arm.entity_queries,
            pruned_arm.entity_route_rate,
            pruned_arm.entity_cand_fraction,
            token_arm.cand_fraction,
        );
        println!(
            "perf smoke stage breakdown over {} questions (virtual ms): {}",
            e2e_set.questions.len(),
            stage_desc,
        );
        println!(
            "perf smoke runner thread-identity ok: threads 1/2/4/8 \
             byte-identical over {} questions, 8-thread virtual speedup \
             {:.2}x",
            e2e_set.questions.len(),
            virtual_speedup_8,
        );
        return;
    }

    let arms = [exact_arm, pruned_arm, perquery_arm, token_arm];
    let report = json_report(
        &build,
        &retr,
        &scoring,
        &batched,
        &sharded,
        &scaling,
        &entity_probe,
        &arms,
        &sweep,
        e2e_set.questions.len(),
        exp.cfg.top_k,
        exp.cfg.retrieval_jitter,
        warn.warnings(),
    );
    std::fs::write("BENCH_perf.json", &report).expect("write BENCH_perf.json");
    println!("{report}");
    let scaling_desc = scaling
        .iter()
        .map(|r| {
            format!(
                "{}docs:{:.0}ms/x{:.1}/{}B/{:.2}ms",
                r.docs, r.build_serial_ms, r.build_speedup, r.disk_bytes, r.query_ms,
            )
        })
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "perf ok: docs={} retrieval_speedup={:.2} scoring_speedup={:.2} \
         build_speedup={:.2} batched_w8_speedup={:.2} warm_qps(pruned)={:.1} \
         entity route rate {:.3} cand_fraction {:.4} (token-only {:.4}, \
         ceiling probe max {:.3} < {:.2}), sharded identity ok at shard \
         counts {:?} + on-disk reopen, scaling [{}] stage breakdown [{}] \
         runner thread-identity ok at 1/2/4/8 (8-thread virtual speedup \
         {:.2}x) — BENCH_perf.json written",
        build.docs,
        retrieval_speedup,
        scoring_speedup,
        build.serial_ms / build.parallel_ms,
        batched_w8,
        e2e_set.questions.len() as f64 / (arms[1].warm_ms / 1e3),
        arms[1].entity_route_rate,
        arms[1].entity_cand_fraction,
        arms[3].cand_fraction,
        entity_probe.max_disjoint_dot,
        entity_probe.ceiling,
        sharded.shard_counts,
        scaling_desc,
        stage_desc,
        virtual_speedup_8,
    );
}
