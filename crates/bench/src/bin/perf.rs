//! Perf bench: the retrieval fast path measured end to end, with every
//! speedup gated on bit-identical results.
//!
//! Four sections, each an exact-vs-fast pair:
//!
//! * **build** — serial vs parallel [`BaseIndex`] construction over the
//!   QALD-10 question union (byte-identical output asserted);
//! * **retrieval** — exact scan vs pruned (token-postings + verified
//!   ceiling) top-k over every indexed verbalisation as a self-query
//!   (bit-identical hits asserted);
//! * **scoring** — pure-f32 scan vs int8 screen + margin rerank over
//!   the full base, one self-query per stored vector (bit-identical
//!   hits asserted; screen/rerank breakdown and f32 vs f32+i8 index
//!   bytes reported);
//! * **batched** — the query-tiled quantized kernel vs one sequential
//!   scan per query, at batch widths 1/4/8/16 over the full base
//!   (per-query results bit-identical to the sequential engine
//!   asserted at every width);
//! * **end-to-end** — the full pipeline in exact vs pruned mode (both
//!   batched) plus a pruned per-query arm, each run cold (fresh
//!   query-embedding cache) then warm (same base re-queried), reporting
//!   questions/sec, postings-build time, and the candidate fraction
//!   pruning achieved (identical answers asserted across all arms);
//! * **stages** — the per-stage profile of the exact cold run: virtual
//!   and wall time per pipeline stage (pseudo / ground / verify /
//!   answer / eval) with each stage's share of the virtual total;
//! * **threads sweep** — the question-level runner at 1/2/4/8 worker
//!   threads over a fresh base each, gated on a byte-identical
//!   [`RunResult::identity_key`](pgg_core::RunResult::identity_key) at
//!   every count. Scaling is reported in *virtual makespan* (the
//!   deterministic list-schedule bound over per-question virtual
//!   costs): wall time cannot show parallel speedup on a single-core
//!   CI box, the virtual schedule can — and it is reproducible.
//!
//! Usage:
//! * `cargo run --release -p bench --bin perf` — full run; writes
//!   `BENCH_perf.json` and exits nonzero on any divergence;
//! * `cargo run --release -p bench --bin perf -- --smoke` — the CI
//!   smoke: reduced sizes, same identity assertions, no JSON file.

use bench::run_or_exit as run;
use bench::warn::{json_escape, WarnLog};
use bench::{model, setup, Experiment};
use pgg_core::{
    BaseIndex, BatchMode, PipelineConfig, PseudoGraphPipeline, RetrievalMode, ScoringMode, StageAgg,
};
use semvec::{NoisyQuery, QueryStyle, ScreenStats};
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

struct BuildTiming {
    docs: usize,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

/// Serial vs parallel index build over the same question set; panics
/// (→ nonzero exit) if the outputs differ in any byte.
fn bench_build(exp: &Experiment, dataset: &worldgen::Dataset) -> (BuildTiming, BaseIndex) {
    let questions: Vec<&str> = dataset.questions.iter().map(|q| q.text.as_str()).collect();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let t = Instant::now();
    let serial = BaseIndex::for_questions_with_threads(
        &exp.wikidata,
        &exp.embedder,
        &exp.cfg,
        questions.iter().copied(),
        1,
    );
    let serial_ms = ms(t);

    let t = Instant::now();
    let parallel = BaseIndex::for_questions_with_threads(
        &exp.wikidata,
        &exp.embedder,
        &exp.cfg,
        questions.iter().copied(),
        threads,
    );
    let parallel_ms = ms(t);

    assert_eq!(serial.verbalised, parallel.verbalised, "build diverged");
    assert_eq!(serial.subjects, parallel.subjects, "build diverged");
    for id in 0..serial.len() {
        assert_eq!(
            serial.hybrid().vectors().vector(id),
            parallel.hybrid().vectors().vector(id),
            "build diverged at vector {id}"
        );
    }
    (
        BuildTiming {
            docs: serial.len(),
            threads,
            serial_ms,
            parallel_ms,
        },
        parallel,
    )
}

struct RetrievalTiming {
    queries: usize,
    exact_ms: f64,
    pruned_ms: f64,
    identical: bool,
}

/// Exact vs pruned retrieval over `queries` self-queries (every indexed
/// verbalisation queried back at the pipeline's k and jitter).
fn bench_retrieval(exp: &Experiment, base: &BaseIndex, queries: usize) -> RetrievalTiming {
    let texts: Vec<String> = base
        .verbalised
        .iter()
        .take(queries)
        .map(|t| t.sentence())
        .collect();
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);

    let arm = |mode: RetrievalMode| {
        let t = Instant::now();
        let hits: Vec<_> = texts
            .iter()
            .map(|q| {
                let salt = kgstore::hash::stable_str_hash(q);
                base.search(
                    &exp.embedder,
                    q,
                    QueryStyle::Folded,
                    k,
                    sigma,
                    salt,
                    mode,
                    ScoringMode::ExactF32,
                )
            })
            .collect();
        (ms(t), hits)
    };
    let (exact_ms, exact) = arm(RetrievalMode::Exact);
    let (pruned_ms, pruned) = arm(RetrievalMode::Pruned);
    RetrievalTiming {
        queries: texts.len(),
        exact_ms,
        pruned_ms,
        identical: exact == pruned,
    }
}

struct ScoringTiming {
    queries: usize,
    exact_ms: f64,
    quant_ms: f64,
    stats: ScreenStats,
    identical: bool,
    bytes_f32: usize,
    bytes_with_quant: usize,
}

/// Pure-f32 scan vs int8 screen + exact rerank, measured at the vector
/// index (no query encoding in either arm, so the ratio is the scoring
/// kernel alone): every stored vector queried back against the full
/// base at the pipeline's k and jitter.
fn bench_scoring(exp: &Experiment, base: &BaseIndex, queries: usize) -> ScoringTiming {
    let vecs = base.hybrid().vectors();
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);
    let n = queries.min(vecs.len());

    let t = Instant::now();
    let exact: Vec<_> = (0..n)
        .map(|id| vecs.top_k_noisy(vecs.vector(id), k, sigma, id as u64))
        .collect();
    let exact_ms = ms(t);

    let mut stats = ScreenStats::default();
    let t = Instant::now();
    let quant: Vec<_> = (0..n)
        .map(|id| {
            let (hits, s) = vecs.top_k_noisy_quant(vecs.vector(id), k, sigma, id as u64);
            stats.absorb(s);
            hits
        })
        .collect();
    let quant_ms = ms(t);

    let store = vecs.store();
    ScoringTiming {
        queries: n,
        exact_ms,
        quant_ms,
        stats,
        identical: exact == quant,
        bytes_f32: store.bytes_f32(),
        bytes_with_quant: store.bytes_with_quant(),
    }
}

struct BatchedWidth {
    width: usize,
    batch_ms: f64,
}

struct BatchedTiming {
    queries: usize,
    seq_ms: f64,
    widths: Vec<BatchedWidth>,
    identical: bool,
}

/// The query-tiled quantized kernel vs one sequential quantized scan
/// per query: every stored vector queried back against the full base,
/// the batched engine fed in chunks of each width. Every width's
/// per-query (hits, screen stats) must be bit-identical to the
/// sequential engine's.
fn bench_batched(exp: &Experiment, base: &BaseIndex, queries: usize) -> BatchedTiming {
    let vecs = base.hybrid().vectors();
    let (k, sigma) = (exp.cfg.top_k, exp.cfg.retrieval_jitter);
    let n = queries.min(vecs.len());

    let t = Instant::now();
    let seq: Vec<_> = (0..n)
        .map(|id| vecs.top_k_noisy_quant(vecs.vector(id), k, sigma, id as u64))
        .collect();
    let seq_ms = ms(t);

    let mut widths = Vec::new();
    let mut identical = true;
    for width in [1usize, 4, 8, 16] {
        let t = Instant::now();
        let mut batched = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + width).min(n);
            let slots: Vec<NoisyQuery<'_>> = (start..end)
                .map(|id| NoisyQuery {
                    vector: vecs.vector(id),
                    salt: id as u64,
                })
                .collect();
            batched.extend(vecs.top_k_noisy_quant_batch(&slots, k, sigma));
            start = end;
        }
        let batch_ms = ms(t);
        identical &= batched.len() == seq.len()
            && batched
                .iter()
                .zip(&seq)
                .all(|((bh, bs), (sh, ss))| bh == sh && bs == ss);
        widths.push(BatchedWidth { width, batch_ms });
    }
    BatchedTiming {
        queries: n,
        seq_ms,
        widths,
        identical,
    }
}

struct E2eArm {
    mode: &'static str,
    batch: &'static str,
    build_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    cand_fraction: f64,
    gate_fallbacks: u64,
    mean_batch_width: f64,
    dedup_rate: f64,
    answers: Vec<String>,
    stage_totals: Vec<(String, StageAgg)>,
}

/// Full pipeline on QALD-10, one (retrieval mode, batch mode) pair:
/// cold run on a fresh base (empty query-embedding cache), then a warm
/// re-run on the same.
fn e2e_arm(
    exp: &Experiment,
    dataset: &worldgen::Dataset,
    mode: RetrievalMode,
    batch: BatchMode,
) -> E2eArm {
    let cfg = PipelineConfig {
        retrieval_mode: mode,
        batch_mode: batch,
        ..exp.cfg.clone()
    };
    let t = Instant::now();
    let base = BaseIndex::for_questions(
        &exp.wikidata,
        &exp.embedder,
        &cfg,
        dataset.questions.iter().map(|q| q.text.as_str()),
    );
    let build_ms = ms(t);
    let llm = model(&exp.world, "gpt-3.5");
    let pipeline = PseudoGraphPipeline::full();

    let t = Instant::now();
    let cold = run(
        &pipeline,
        &llm,
        Some(&exp.wikidata),
        Some(&base),
        &exp.embedder,
        &cfg,
        dataset,
        0,
    );
    let cold_ms = ms(t);

    let t = Instant::now();
    let warm = run(
        &pipeline,
        &llm,
        Some(&exp.wikidata),
        Some(&base),
        &exp.embedder,
        &cfg,
        dataset,
        0,
    );
    let warm_ms = ms(t);

    let answers: Vec<String> = cold.records.iter().map(|r| r.answer.clone()).collect();
    let warm_answers: Vec<String> = warm.records.iter().map(|r| r.answer.clone()).collect();
    assert_eq!(
        answers, warm_answers,
        "warm cache changed answers in {mode:?} mode"
    );
    let stats = base.cache_stats();
    let scoring = base.scoring_stats();
    E2eArm {
        mode: match mode {
            RetrievalMode::Exact => "exact",
            RetrievalMode::Pruned => "pruned",
        },
        batch: match batch {
            BatchMode::Batched => "batched",
            BatchMode::PerQuery => "per-query",
        },
        build_ms,
        cold_ms,
        warm_ms,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cand_fraction: scoring.candidate_fraction(base.len()),
        gate_fallbacks: scoring.gate_fallbacks,
        mean_batch_width: scoring.mean_batch_width(),
        dedup_rate: scoring.dedup_rate(),
        answers,
        stage_totals: cold.stage_totals(),
    }
}

struct ThreadsArm {
    threads: usize,
    wall_cold_ms: f64,
    virtual_makespan_ms: u64,
    identical: bool,
}

/// The question-level runner swept over worker-thread counts, each on a
/// fresh base (cold caches, so arms are comparable). Every count must
/// reproduce the 1-thread run byte for byte (`identity_key` digests
/// answers, scores, traces, fault ledgers, and stage timings — wall
/// nanoseconds excluded, the one schedule-dependent field). Scaling is
/// the *virtual makespan*: the deterministic list-schedule length of
/// the per-question virtual costs over `threads` workers.
fn threads_sweep(
    exp: &Experiment,
    dataset: &worldgen::Dataset,
    counts: &[usize],
) -> Vec<ThreadsArm> {
    let llm = model(&exp.world, "gpt-3.5");
    let pipeline = PseudoGraphPipeline::full();
    let mut reference: Option<u64> = None;
    counts
        .iter()
        .map(|&threads| {
            let base = BaseIndex::for_questions(
                &exp.wikidata,
                &exp.embedder,
                &exp.cfg,
                dataset.questions.iter().map(|q| q.text.as_str()),
            );
            let t = Instant::now();
            let res = run(
                &pipeline,
                &llm,
                Some(&exp.wikidata),
                Some(&base),
                &exp.embedder,
                &exp.cfg,
                dataset,
                threads,
            );
            let wall_cold_ms = ms(t);
            let key = res.identity_key();
            let identical = *reference.get_or_insert(key) == key;
            ThreadsArm {
                threads,
                wall_cold_ms,
                virtual_makespan_ms: res.virtual_makespan_ms(threads),
                identical,
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // one argument per report section
fn json_report(
    build: &BuildTiming,
    retr: &RetrievalTiming,
    scoring: &ScoringTiming,
    batched: &BatchedTiming,
    arms: &[E2eArm],
    sweep: &[ThreadsArm],
    questions: usize,
    k: usize,
    sigma: f32,
    warnings: &[String],
) -> String {
    // Hand-formatted: the report layout is fixed and flat, and keeping
    // the encoder trivial means the bench has no serializer in its hot
    // or cold path to misattribute time to.
    let width_json: Vec<String> = batched
        .widths
        .iter()
        .map(|w| {
            format!(
                "    {{\"width\": {}, \"batch_ms\": {:.1}, \"speedup\": {:.2}}}",
                w.width,
                w.batch_ms,
                batched.seq_ms / w.batch_ms,
            )
        })
        .collect();
    let arm_json: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                concat!(
                    "    {{\"mode\": \"{}\", \"batch\": \"{}\", \"build_ms\": {:.1}, ",
                    "\"cold_ms\": {:.1}, \"warm_ms\": {:.1}, ",
                    "\"cold_qps\": {:.2}, \"warm_qps\": {:.2}, ",
                    "\"cache_hits\": {}, \"cache_misses\": {}, ",
                    "\"cand_fraction\": {:.4}, \"gate_fallbacks\": {}, ",
                    "\"mean_batch_width\": {:.2}, ",
                    "\"dedup_rate\": {:.4}}}"
                ),
                a.mode,
                a.batch,
                a.build_ms,
                a.cold_ms,
                a.warm_ms,
                questions as f64 / (a.cold_ms / 1e3),
                questions as f64 / (a.warm_ms / 1e3),
                a.cache_hits,
                a.cache_misses,
                a.cand_fraction,
                a.gate_fallbacks,
                a.mean_batch_width,
                a.dedup_rate,
            )
        })
        .collect();
    let stage_rows = &arms[0].stage_totals;
    let virtual_total: u64 = stage_rows.iter().map(|(_, agg)| agg.virtual_ms).sum();
    let stage_json: Vec<String> = stage_rows
        .iter()
        .map(|(stage, agg)| {
            format!(
                concat!(
                    "    {{\"stage\": \"{}\", \"questions\": {}, \"virtual_ms\": {}, ",
                    "\"wall_ms\": {:.1}, \"virtual_share\": {:.4}}}"
                ),
                json_escape(stage),
                agg.questions,
                agg.virtual_ms,
                agg.wall_ns as f64 / 1e6,
                agg.virtual_ms as f64 / virtual_total.max(1) as f64,
            )
        })
        .collect();
    let base_makespan = sweep.first().map_or(1, |a| a.virtual_makespan_ms.max(1));
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|a| {
            format!(
                concat!(
                    "    {{\"threads\": {}, \"wall_cold_ms\": {:.1}, ",
                    "\"virtual_makespan_ms\": {}, \"virtual_qps\": {:.2}, ",
                    "\"virtual_speedup\": {:.2}, \"identical\": {}}}"
                ),
                a.threads,
                a.wall_cold_ms,
                a.virtual_makespan_ms,
                questions as f64 / (a.virtual_makespan_ms.max(1) as f64 / 1e3),
                base_makespan as f64 / a.virtual_makespan_ms.max(1) as f64,
                a.identical,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf\",\n",
            "  \"dataset\": \"qald\",\n",
            "  \"source\": \"wikidata\",\n",
            "  \"build\": {{\"docs\": {}, \"threads\": {}, \"serial_ms\": {:.1}, ",
            "\"parallel_ms\": {:.1}, \"speedup\": {:.2}, \"identical\": true}},\n",
            "  \"retrieval\": {{\"queries\": {}, \"k\": {}, \"sigma\": {:.2}, ",
            "\"exact_ms\": {:.1}, \"pruned_ms\": {:.1}, \"speedup\": {:.2}, ",
            "\"identical\": {}}},\n",
            "  \"scoring\": {{\"queries\": {}, \"k\": {}, \"sigma\": {:.2}, ",
            "\"exact_f32_ms\": {:.1}, \"quant_ms\": {:.1}, \"speedup\": {:.2}, ",
            "\"screened\": {}, \"reranked\": {}, \"rerank_rate\": {:.4}, ",
            "\"bytes_f32\": {}, \"bytes_with_quant\": {}, \"identical\": {}}},\n",
            "  \"batched\": {{\"queries\": {}, \"k\": {}, \"sigma\": {:.2}, ",
            "\"seq_ms\": {:.1}, \"identical\": {}, \"widths\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"e2e\": {{\"questions\": {}, \"answers_identical\": true, \"arms\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"stages\": {{\"questions\": {}, \"arm\": \"{} {}\", ",
            "\"virtual_total_ms\": {}, \"rows\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"threads_sweep\": {{\"questions\": {}, \"answers_identical\": {}, ",
            "\"counts\": [\n",
            "{}\n",
            "  ]}},\n",
            "  \"warnings\": [{}]\n",
            "}}\n"
        ),
        build.docs,
        build.threads,
        build.serial_ms,
        build.parallel_ms,
        build.serial_ms / build.parallel_ms,
        retr.queries,
        k,
        sigma,
        retr.exact_ms,
        retr.pruned_ms,
        retr.exact_ms / retr.pruned_ms,
        retr.identical,
        scoring.queries,
        k,
        sigma,
        scoring.exact_ms,
        scoring.quant_ms,
        scoring.exact_ms / scoring.quant_ms,
        scoring.stats.screened,
        scoring.stats.reranked,
        scoring.stats.rerank_rate(),
        scoring.bytes_f32,
        scoring.bytes_with_quant,
        scoring.identical,
        batched.queries,
        k,
        sigma,
        batched.seq_ms,
        batched.identical,
        width_json.join(",\n"),
        questions,
        arm_json.join(",\n"),
        questions,
        arms[0].mode,
        arms[0].batch,
        virtual_total,
        stage_json.join(",\n"),
        questions,
        sweep.iter().all(|a| a.identical),
        sweep_json.join(",\n"),
        warnings
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    bench::install_wall_clock();
    let exp = setup(20);
    let (dataset, retr_queries, e2e_questions) = if smoke {
        (&exp.nature, 600, 15)
    } else {
        (&exp.qald, usize::MAX, exp.qald.questions.len())
    };

    let (build, base) = bench_build(&exp, dataset);
    let retr = bench_retrieval(&exp, &base, retr_queries.min(base.len()));
    if !retr.identical {
        eprintln!(
            "perf violation: pruned retrieval diverged from the exact scan \
             over {} self-queries",
            retr.queries
        );
        std::process::exit(1);
    }

    let scoring = bench_scoring(&exp, &base, retr_queries.min(base.len()));
    if !scoring.identical {
        eprintln!(
            "perf violation: quantized screen+rerank diverged from the \
             exact f32 scan over {} self-queries",
            scoring.queries
        );
        std::process::exit(1);
    }

    let batched = bench_batched(&exp, &base, retr_queries.min(base.len()));
    if !batched.identical {
        eprintln!(
            "perf violation: the batched quantized engine diverged from the \
             sequential per-query scan over {} self-queries",
            batched.queries
        );
        std::process::exit(1);
    }

    let e2e_set = worldgen::Dataset {
        kind: dataset.kind,
        questions: dataset.questions[..e2e_questions.min(dataset.questions.len())].to_vec(),
    };
    let exact_arm = e2e_arm(&exp, &e2e_set, RetrievalMode::Exact, BatchMode::Batched);
    let pruned_arm = e2e_arm(&exp, &e2e_set, RetrievalMode::Pruned, BatchMode::Batched);
    let perquery_arm = e2e_arm(&exp, &e2e_set, RetrievalMode::Pruned, BatchMode::PerQuery);
    if exact_arm.answers != pruned_arm.answers {
        eprintln!("perf violation: pruned mode changed end-to-end answers");
        std::process::exit(1);
    }
    if pruned_arm.answers != perquery_arm.answers {
        eprintln!("perf violation: batched mode changed end-to-end answers");
        std::process::exit(1);
    }
    let mut warn = WarnLog::new();
    warn.slower_than(pruned_arm.cold_ms, exact_arm.cold_ms, 0.05, || {
        format!(
            "pruned e2e underperforms exact (cold {:.2} q/s vs {:.2} q/s, \
             candidate fraction {:.3}, {} gate fallbacks) — the adaptive gate \
             is letting unprofitable pruning through on this corpus",
            e2e_set.questions.len() as f64 / (pruned_arm.cold_ms / 1e3),
            e2e_set.questions.len() as f64 / (exact_arm.cold_ms / 1e3),
            pruned_arm.cand_fraction,
            pruned_arm.gate_fallbacks,
        )
    });

    let sweep = threads_sweep(&exp, &e2e_set, &[1, 2, 4, 8]);
    if let Some(bad) = sweep.iter().find(|a| !a.identical) {
        eprintln!(
            "perf violation: the {}-thread runner diverged from the 1-thread \
             run (identity key mismatch over {} questions)",
            bad.threads,
            e2e_set.questions.len(),
        );
        std::process::exit(1);
    }
    let makespan_1 = sweep[0].virtual_makespan_ms.max(1);
    let makespan_8 = sweep
        .last()
        .expect("sweep has arms")
        .virtual_makespan_ms
        .max(1);
    let virtual_speedup_8 = makespan_1 as f64 / makespan_8 as f64;
    if !smoke && virtual_speedup_8 < 4.0 {
        eprintln!(
            "perf violation: 8-thread virtual speedup {virtual_speedup_8:.2}x \
             is below the 4x gate (makespan {makespan_1} ms at 1 thread vs \
             {makespan_8} ms at 8)"
        );
        std::process::exit(1);
    }
    let stage_desc = exact_arm
        .stage_totals
        .iter()
        .map(|(stage, agg)| format!("{stage}={}", agg.virtual_ms))
        .collect::<Vec<_>>()
        .join(" ");

    let retrieval_speedup = retr.exact_ms / retr.pruned_ms;
    let scoring_speedup = scoring.exact_ms / scoring.quant_ms;
    let batched_w8 = batched
        .widths
        .iter()
        .find(|w| w.width == 8)
        .map_or(1.0, |w| batched.seq_ms / w.batch_ms);
    if smoke {
        println!(
            "perf smoke ok: docs={} build byte-identical ({:.0}ms serial / {:.0}ms \
             x{}), retrieval bit-identical over {} queries (speedup {:.2}), \
             scoring bit-identical over {} queries (speedup {:.2}, rerank rate \
             {:.4}), batched kernel bit-identical over {} queries at widths \
             1/4/8/16 (w8 speedup {:.2}), e2e answers identical across modes, \
             batch modes, and cache states",
            build.docs,
            build.serial_ms,
            build.parallel_ms,
            build.threads,
            retr.queries,
            retrieval_speedup,
            scoring.queries,
            scoring_speedup,
            scoring.stats.rerank_rate(),
            batched.queries,
            batched_w8,
        );
        println!(
            "perf smoke stage breakdown over {} questions (virtual ms): {}",
            e2e_set.questions.len(),
            stage_desc,
        );
        println!(
            "perf smoke runner thread-identity ok: threads 1/2/4/8 \
             byte-identical over {} questions, 8-thread virtual speedup \
             {:.2}x",
            e2e_set.questions.len(),
            virtual_speedup_8,
        );
        return;
    }

    let arms = [exact_arm, pruned_arm, perquery_arm];
    let report = json_report(
        &build,
        &retr,
        &scoring,
        &batched,
        &arms,
        &sweep,
        e2e_set.questions.len(),
        exp.cfg.top_k,
        exp.cfg.retrieval_jitter,
        warn.warnings(),
    );
    std::fs::write("BENCH_perf.json", &report).expect("write BENCH_perf.json");
    println!("{report}");
    println!(
        "perf ok: docs={} retrieval_speedup={:.2} scoring_speedup={:.2} \
         build_speedup={:.2} batched_w8_speedup={:.2} warm_qps(pruned)={:.1} \
         stage breakdown [{}] runner thread-identity ok at 1/2/4/8 \
         (8-thread virtual speedup {:.2}x) — BENCH_perf.json written",
        build.docs,
        retrieval_speedup,
        scoring_speedup,
        build.serial_ms / build.parallel_ms,
        batched_w8,
        e2e_set.questions.len() as f64 / (arms[1].warm_ms / 1e3),
        stage_desc,
        virtual_speedup_8,
    );
}
