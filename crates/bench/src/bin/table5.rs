//! Table 5 — ablation, GPT-4: CoT → Pseudo-Graph only → full
//! Verification, on QALD-10 and Nature Questions. The paper's key
//! observation: the pseudo-graph alone *lowers* GPT-4's open-ended
//! score (conservative graphs enumerate less than CoT prose), and
//! verification more than recovers it.
//!
//! Usage: `cargo run --release -p bench --bin table5`.

use bench::ablation_table;

fn main() {
    let (t, results) = ablation_table(
        "gpt-4",
        "Table 5",
        &[(48.9, 27.7), (53.9, 24.4), (56.5, 39.2)],
    );
    println!("{t}");
    let pg_drop = results[1].1.score() - results[0].1.score();
    println!(
        "Shape check: pseudo-graph-only changes GPT-4's Nature Questions score by          {pg_drop:+.1} (paper: -3.3 — conservativeness hurts before verification recovers)."
    );
}
