//! Chaos bench: sweep LLM transport fault rates over the full pipeline
//! with the resilience middleware on vs off, reporting how accuracy
//! degrades and what the degradation machinery absorbed.
//!
//! Faults are injected by [`simllm::FaultyLlm`] on a deterministic
//! seeded schedule keyed on (question, task kind, attempt), so every
//! sweep is reproducible and parallel runs match serial ones. The
//! invariants checked here are the robustness contract: zero panics,
//! zero aborted questions, every question answered at every rate.
//!
//! Usage:
//! * `cargo run --release -p bench --bin chaos` — full sweep
//!   (SimpleQuestions N=100, rates 0 → 0.5, resilience on vs off);
//! * `cargo run --release -p bench --bin chaos -- --smoke` — the CI
//!   smoke: N=20 at rate 0.3, asserts the invariants and exits.

use bench::run_or_exit as run;
use bench::{model, setup};
use evalkit::{Cell, Table};
use pgg_core::{PipelineConfig, PseudoGraphPipeline, ResilienceConfig, RunResult};
use simllm::{FaultPlan, FaultyLlm, SimLlm};

const FAULT_SEED: u64 = 0xC8A05;

struct Arm {
    rate: f64,
    resilient: bool,
    result: RunResult,
}

/// Run one (fault rate × resilience) arm with a fresh fault schedule.
fn arm(
    exp: &bench::Experiment,
    base: &pgg_core::BaseIndex,
    llm: SimLlm,
    rate: f64,
    resilient: bool,
    threads: usize,
) -> Arm {
    // Fresh decorator per arm: attempt counters start at zero, so every
    // arm sees the same first-attempt fault schedule.
    let faulty = FaultyLlm::new(llm, FaultPlan::uniform(FAULT_SEED, rate));
    let cfg = PipelineConfig {
        resilience: if resilient {
            ResilienceConfig::default()
        } else {
            ResilienceConfig::disabled()
        },
        ..exp.cfg.clone()
    };
    let result = run(
        &PseudoGraphPipeline::full(),
        &faulty,
        Some(&exp.wikidata),
        Some(base),
        &exp.embedder,
        &cfg,
        &exp.simpleq,
        threads,
    );
    Arm {
        rate,
        resilient,
        result,
    }
}

/// The robustness contract every arm must satisfy. Returns violations.
fn check_invariants(a: &Arm) -> Vec<String> {
    let mut bad = Vec::new();
    if a.result.errors > 0 {
        bad.push(format!(
            "rate {:.1} resilience={}: {} panicked questions",
            a.rate, a.resilient, a.result.errors
        ));
    }
    let unanswered = a
        .result
        .records
        .iter()
        .filter(|r| r.answer.is_empty())
        .count();
    if unanswered > 0 {
        bad.push(format!(
            "rate {:.1} resilience={}: {} unanswered questions",
            a.rate, a.resilient, unanswered
        ));
    }
    bad
}

fn smoke() {
    let exp = setup(20);
    let base = exp.base(&exp.simpleq, &exp.wikidata);
    let a = arm(&exp, &base, model(&exp.world, "gpt-3.5"), 0.3, true, 1);
    let violations = check_invariants(&a);
    for v in &violations {
        eprintln!("chaos smoke violation: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    if a.result.score() <= 0.0 {
        eprintln!("chaos smoke violation: zero score at fault rate 0.3");
        std::process::exit(1);
    }
    // The faulted run replayed on the 8-thread runner must reproduce
    // the 1-thread run byte for byte (fresh fault decorator, same
    // seeded schedule): faults under parallelism is exactly where a
    // racy runner would first diverge.
    let b = arm(&exp, &base, model(&exp.world, "gpt-3.5"), 0.3, true, 8);
    if a.result.identity_key() != b.result.identity_key() {
        eprintln!(
            "chaos smoke violation: runner outcomes differ between 1 and 8 \
             threads under fault rate 0.3"
        );
        std::process::exit(1);
    }
    println!(
        "chaos smoke ok: N=20 rate=0.3 score={:.1} faults={} retries={} degraded={} errors=0, \
         runner threads 1/8 identical under faults",
        a.result.score(),
        a.result.faults.faults,
        a.result.faults.retries,
        a.result.faults.degraded_questions,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let exp = setup(100);
    let base = exp.base(&exp.simpleq, &exp.wikidata);
    let rates = [0.0, 0.1, 0.2, 0.3, 0.5];

    let mut arms: Vec<(Arm, Arm)> = Vec::new();
    for &rate in &rates {
        let on = arm(&exp, &base, model(&exp.world, "gpt-3.5"), rate, true, 0);
        let off = arm(&exp, &base, model(&exp.world, "gpt-3.5"), rate, false, 0);
        arms.push((on, off));
    }

    let mut t = Table::new(
        "Chaos sweep — full pipeline, SimpleQuestions N=100, GPT-3.5 \
         (resilience on vs off)",
        &[
            "fault rate",
            "Hit@1 (on)",
            "Hit@1 (off)",
            "faults (on)",
            "retries (on)",
            "degraded (on)",
            "degraded (off)",
        ],
    );
    for (on, off) in &arms {
        t.row(
            format!("{:.1}", on.rate),
            vec![
                Cell::Value(on.result.score()),
                Cell::Value(off.result.score()),
                Cell::Value(on.result.faults.faults as f64),
                Cell::Value(on.result.faults.retries as f64),
                Cell::Value(on.result.faults.degraded_questions as f64),
                Cell::Value(off.result.faults.degraded_questions as f64),
            ],
        );
    }
    println!("{}", t.render());

    let mut violations: Vec<String> = Vec::new();
    for (on, off) in &arms {
        violations.extend(check_invariants(on));
        violations.extend(check_invariants(off));
    }
    let (on0, off0) = &arms[0];
    if (on0.result.score() - off0.result.score()).abs() > 1e-9 {
        violations.push("rate 0.0 must be identical with resilience on and off".into());
    }
    let (on2, off2) = arms
        .iter()
        .find(|(on, _)| (on.rate - 0.2).abs() < 1e-9)
        .expect("0.2 arm present");
    if on2.result.score() <= off2.result.score() {
        violations.push(format!(
            "resilience must strictly help at rate 0.2: on {:.1} vs off {:.1}",
            on2.result.score(),
            off2.result.score()
        ));
    }
    for v in &violations {
        eprintln!("chaos invariant violated: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    println!(
        "\nAll chaos invariants hold: zero panics, every question answered at \
         every rate, rate-0 transparency, and resilience strictly helps at 0.2 \
         ({:.1} vs {:.1}).",
        on2.result.score(),
        off2.result.score()
    );
}
