//! Ad-hoc diagnostic for Nature Questions (not a reproduction table).
use bench::run_or_exit as run;
use bench::{model, setup};
use pgg_core::{Cot, Method, PseudoGraphPipeline};

fn main() {
    let exp = setup(50);
    let llm = model(&exp.world, "gpt-3.5");
    let base = exp.base(&exp.nature, &exp.wikidata);
    for m in [
        &Cot as &dyn Method,
        &PseudoGraphPipeline::pseudo_only(),
        &PseudoGraphPipeline::full(),
    ] {
        let res = run(
            m,
            &llm,
            Some(&exp.wikidata),
            Some(&base),
            &exp.embedder,
            &exp.cfg,
            &exp.nature,
            0,
        );
        let n = res.records.len() as f64;
        let p: f64 = res
            .records
            .iter()
            .filter_map(|r| r.rouge)
            .map(|x| x.precision)
            .sum::<f64>()
            / n;
        let rc: f64 = res
            .records
            .iter()
            .filter_map(|r| r.rouge)
            .map(|x| x.recall)
            .sum::<f64>()
            / n;
        println!(
            "{:14} f1={:5.1} precision={:.2} recall={:.2}",
            m.name(),
            res.rouge.percent(),
            p,
            rc
        );
        for (r, q) in res.records.iter().zip(&exp.nature.questions).take(4) {
            let worldgen::Gold::References(refs) = &q.gold else {
                continue;
            };
            println!(
                "   [{:.2}] A: {}",
                r.rouge.unwrap().f1,
                &r.answer.chars().take(150).collect::<String>()
            );
            println!(
                "          R: {}",
                &refs[0].chars().take(150).collect::<String>()
            );
            println!(
                "          ge={:?} pseudo={} fixed={}",
                r.trace.ground_entities,
                r.trace.pseudo_triples.len(),
                r.trace.fixed_triples.len()
            );
        }
    }
}
