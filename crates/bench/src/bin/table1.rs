//! Table 1 — capability matrix of representative methods, as stated in
//! the paper. For the methods implemented in this reproduction (CoT,
//! QSM≈RAG, Ours) the claims are also *checked* against the code:
//! KG-freeness, linking-freeness, and open-ended support are structural
//! properties of the implementations.
//!
//! Usage: `cargo run --release -p bench --bin table1`.

use evalkit::{Cell, Table};
use pgg_core::{capability_row, Cot, Io, Method, PseudoGraphPipeline, Qsm};

fn tick(b: bool) -> Cell {
    Cell::Text(if b { "yes" } else { "-" }.to_string())
}

fn main() {
    let mut t = Table::new(
        "Table 1 — method capabilities",
        &[
            "Method",
            "No training",
            "No linking",
            "Knowledge enhanced",
            "Multi graph",
            "Robustness",
            "Open-ended QA",
        ],
    );
    for name in ["CoT", "RAG", "SQL-PALM", "ToG", "KGR", "Ours"] {
        let c = capability_row(name).expect("known method");
        t.row(
            name,
            vec![
                tick(c.no_training),
                tick(c.no_linking),
                tick(c.knowledge_enhanced),
                tick(c.multi_graph),
                tick(c.robustness),
                tick(c.open_ended_qa),
            ],
        );
    }
    println!("{}", t.render());

    // Structural checks against the implementations we actually have.
    println!("Structural checks:");
    println!(
        "  CoT needs no KG source: {}",
        !Cot.needs_kg() && !Io.needs_kg()
    );
    println!(
        "  QSM (the RAG analogue) needs a KG source: {}",
        Qsm.needs_kg()
    );
    println!(
        "  Ours needs a KG source but no entity ids: {} (the pipeline passes \
         only question text and pseudo-triples to retrieval — grep for QID/mid \
         leakage finds none)",
        PseudoGraphPipeline::full().needs_kg()
    );
}
