//! Table 2 — main results: Hit@1 on SimpleQuestions and QALD-10,
//! ROUGE-L on Nature Questions, for IO / CoT / SC / QSM / Ours on both
//! models.
//!
//! Usage: `cargo run --release -p bench --bin table2` (set `FAST=1` for
//! a reduced-size smoke run).

use bench::run_or_exit as run;
use bench::{model, setup};
use evalkit::{Cell, Table};
use pgg_core::{Cot, Io, Method, PseudoGraphPipeline, Qsm, SelfConsistency};

/// Paper numbers for the paper-vs-measured columns.
/// (method, sq, qald, nq) per model; `None` = the paper's `-`.
const PAPER_GPT35: &[(&str, f64, f64, Option<f64>)] = &[
    ("IO", 20.2, 38.7, Some(20.5)),
    ("CoT", 22.0, 40.5, Some(23.2)),
    ("SC", 21.2, 41.1, None),
    ("QSM", 27.5, 34.2, Some(23.8)),
    ("Ours", 34.3, 48.6, Some(37.5)),
];
const PAPER_GPT4: &[(&str, f64, f64, Option<f64>)] = &[
    ("IO", 29.9, 44.7, Some(20.9)),
    ("CoT", 32.2, 48.9, Some(27.7)),
    ("SC", 36.0, 48.9, None),
    ("QSM", 31.3, 46.2, Some(27.0)),
    ("Ours", 40.0, 56.5, Some(39.2)),
];

fn main() {
    let fast = std::env::var("FAST").is_ok();
    // One fixture for both models: QALD-10 and Nature Questions (and
    // their base indexes, via the Experiment memo) are shared; only the
    // SimpleQuestions budget differs per model, and the generator is
    // prefix-stable, so the GPT-4 run uses a truncated view of the same
    // dataset instead of a second world build.
    let exp = setup(if fast { 150 } else { 1000 });
    for (model_name, paper_rows, sq_n) in [
        ("gpt-3.5", PAPER_GPT35, if fast { 150 } else { 1000 }),
        ("gpt-4", PAPER_GPT4, 150),
    ] {
        let llm = model(&exp.world, model_name);
        let truncated;
        let simpleq = if exp.simpleq.questions.len() > sq_n {
            truncated = worldgen::Dataset {
                kind: exp.simpleq.kind,
                questions: exp.simpleq.questions[..sq_n].to_vec(),
            };
            &truncated
        } else {
            &exp.simpleq
        };
        let sq_base = exp.base(simpleq, &exp.freebase);
        let qald_base = exp.base(&exp.qald, &exp.wikidata);
        let nature_base = exp.base(&exp.nature, &exp.wikidata);
        let mut table = Table::new(
            format!("Table 2 — {model_name} (paper / measured)"),
            &[
                "Method",
                "SimpleQuestions (Hit@1)",
                "QALD-10 (Hit@1)",
                "Nature Questions (ROUGE-L)",
            ],
        );
        for &(mname, p_sq, p_qald, p_nq) in paper_rows {
            let io = Io;
            let cot = Cot;
            let sc = SelfConsistency;
            let qsm = Qsm;
            let ours = PseudoGraphPipeline::full();
            let m: &dyn Method = match mname {
                "IO" => &io,
                "CoT" => &cot,
                "SC" => &sc,
                "QSM" => &qsm,
                "Ours" => &ours,
                _ => unreachable!(),
            };
            // SimpleQuestions is Freebase-grounded; QALD-10 and Nature
            // Questions use the Wikidata-like source (as in the paper's
            // main setting).
            let sq = run(
                m,
                &llm,
                Some(&exp.freebase),
                Some(&sq_base),
                &exp.embedder,
                &exp.cfg,
                simpleq,
                0,
            );
            let qald = run(
                m,
                &llm,
                Some(&exp.wikidata),
                Some(&qald_base),
                &exp.embedder,
                &exp.cfg,
                &exp.qald,
                0,
            );
            let nq_cell = if let Some(paper_nq) = p_nq {
                let nq = run(
                    m,
                    &llm,
                    Some(&exp.wikidata),
                    Some(&nature_base),
                    &exp.embedder,
                    &exp.cfg,
                    &exp.nature,
                    0,
                );
                Cell::PaperVsMeasured {
                    paper: paper_nq,
                    measured: nq.score(),
                }
            } else {
                Cell::Absent // the paper does not run SC on open-ended answers
            };
            table.row(
                mname,
                vec![
                    Cell::PaperVsMeasured {
                        paper: p_sq,
                        measured: sq.score(),
                    },
                    Cell::PaperVsMeasured {
                        paper: p_qald,
                        measured: qald.score(),
                    },
                    nq_cell,
                ],
            );
        }
        println!("{}", table.render());
        println!(
            "LLM calls: {}   approx tokens: {}\n",
            llm.call_count(),
            llm.tokens_processed()
        );
    }
}

use simllm::LanguageModel;
