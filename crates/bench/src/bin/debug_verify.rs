//! Ad-hoc: trace verification on one Nature WhoList question.
use bench::{model, setup};
use cypher::decode_llm_output;
use pgg_core::{ground_graph, BaseIndex, PipelineConfig};
use simllm::behavior::pseudo::pseudo_cypher;
use simllm::behavior::verify::verify_graph;

fn main() {
    let exp = setup(50);
    let llm = model(&exp.world, "gpt-3.5");
    let mem = llm.memory();
    let base = exp.base(&exp.nature, &exp.wikidata);
    let q = exp
        .nature
        .questions
        .iter()
        .find(|q| q.text.contains("cryptography"))
        .unwrap();
    println!("Q: {}", q.text);
    let raw = pseudo_cypher(&mem, q);
    let pseudo = decode_llm_output(&raw).unwrap();
    for t in &pseudo {
        println!("  pseudo {t}");
    }
    let (ground, stats) = ground_graph(&exp.wikidata, &base, &exp.embedder, &exp.cfg, &pseudo);
    println!("stats {stats:?}");
    for ge in &ground.entities {
        println!(
            "  ge {} ({:.2}) {} triples",
            ge.label,
            ge.score,
            ge.triples.len()
        );
        for t in ge.triples.iter().take(6) {
            println!("      {t}");
        }
    }
    let fixed = verify_graph(&mem, q, &pseudo, &ground);
    for t in &fixed {
        println!("  fixed {t}");
    }
    let _ = PipelineConfig::default();
    let _ = BaseIndex::for_question;
}
