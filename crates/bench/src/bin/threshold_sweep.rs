//! Design-choice ablation: sweep the entity-confidence threshold of
//! pruning step 2 (the paper fixes it at 0.7 under Sentence-BERT
//! geometry; our encoder's equivalent operating point differs — this
//! sweep maps the whole curve, including the Figure-7 failure regime
//! where everything gets pruned) and the retrieval-jitter level.
//!
//! Usage: `cargo run --release -p bench --bin threshold_sweep`.

use bench::run_or_exit as run;
use bench::{model, setup};
use evalkit::{Cell, Table};
use pgg_core::PseudoGraphPipeline;

fn main() {
    let exp = setup(50);
    let llm = model(&exp.world, "gpt-3.5");
    let qald_base = exp.base(&exp.qald, &exp.wikidata);

    let mut t = Table::new(
        "Entity-threshold sweep (QALD-10, GPT-3.5)",
        &["threshold", "Hit@1", "empty ground graphs (%)"],
    );
    for thr in [0.0f32, 0.15, 0.30, 0.45, 0.60, 0.75, 0.90] {
        let mut cfg = exp.cfg.clone();
        cfg.entity_threshold = thr;
        let res = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &cfg,
            &exp.qald,
            0,
        );
        let empty = res
            .records
            .iter()
            .filter(|r| r.trace.ground_entities.is_empty())
            .count();
        t.row(
            format!("{thr:.2}"),
            vec![
                Cell::Value(res.score()),
                Cell::Value(100.0 * empty as f64 / res.records.len() as f64),
            ],
        );
    }
    println!("{}", t.render());
    println!(
        "High thresholds reproduce the paper's Figure-7 failure: every entity \
         pruned, the pipeline degrades to pseudo-graph-only behaviour."
    );

    let mut t2 = Table::new(
        "Retrieval-jitter sweep (QALD-10, GPT-3.5)",
        &["jitter", "Hit@1"],
    );
    for jitter in [0.0f32, 0.1, 0.2, 0.3, 0.45, 0.6] {
        let mut cfg = exp.cfg.clone();
        cfg.retrieval_jitter = jitter;
        let res = run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &cfg,
            &exp.qald,
            0,
        );
        t2.row(format!("{jitter:.2}"), vec![Cell::Value(res.score())]);
    }
    println!("{}", t2.render());
}
