//! Dataset and KG-source statistics — the "experimental setup" numbers
//! a systems paper reports next to its evaluation.
//!
//! Usage: `cargo run --release -p bench --bin stats`.

use bench::setup;
use evalkit::{Cell, Table};
use kgstore::stats::source_stats;
use worldgen::{Gold, Intent};

fn main() {
    let exp = setup(1000);

    println!(
        "World: {} entities, {} facts, seed 0x{:X}\n",
        exp.world.entity_count(),
        exp.world.fact_count(),
        pgg_core::paper::WORLD_SEED
    );

    let mut t = Table::new(
        "KG sources",
        &[
            "Source",
            "Schema",
            "Triples",
            "Entities",
            "Ambiguous labels",
            "Max out-degree",
        ],
    );
    for src in [&exp.wikidata, &exp.freebase] {
        let s = source_stats(src);
        t.row(
            s.name.clone(),
            vec![
                Cell::Text(s.style),
                Cell::Text(s.store.triples.to_string()),
                Cell::Text(s.entities.to_string()),
                Cell::Text(s.ambiguous_labels.to_string()),
                Cell::Text(s.store.max_out_degree.to_string()),
            ],
        );
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "Datasets",
        &[
            "Dataset", "n", "1-hop", "2-hop", "3-hop", "compare", "list", "who-list", "metric",
        ],
    );
    for ds in [&exp.simpleq, &exp.qald, &exp.nature] {
        let mut hops = [0usize; 4];
        let mut compare = 0;
        let mut list = 0;
        let mut who = 0;
        let mut rouge = false;
        for q in &ds.questions {
            match &q.intent {
                Intent::Chain { path, .. } => hops[path.len().min(3)] += 1,
                Intent::Compare { .. } => compare += 1,
                Intent::List { .. } => list += 1,
                Intent::WhoList { .. } => who += 1,
            }
            rouge |= matches!(q.gold, Gold::References(_));
        }
        t.row(
            ds.kind.name(),
            vec![
                Cell::Text(ds.len().to_string()),
                Cell::Text(hops[1].to_string()),
                Cell::Text(hops[2].to_string()),
                Cell::Text(hops[3].to_string()),
                Cell::Text(compare.to_string()),
                Cell::Text(list.to_string()),
                Cell::Text(who.to_string()),
                Cell::Text(if rouge { "ROUGE-L" } else { "Hit@1" }.to_string()),
            ],
        );
    }
    println!("{}", t.render());

    // Per-dataset semantic KG (base index) sizes.
    let mut t = Table::new(
        "Per-dataset semantic KGs",
        &["Dataset × source", "Indexed triples"],
    );
    for (name, ds, src) in [
        ("SimpleQuestions × freebase", &exp.simpleq, &exp.freebase),
        ("QALD-10 × wikidata", &exp.qald, &exp.wikidata),
        ("Nature Questions × wikidata", &exp.nature, &exp.wikidata),
    ] {
        let base = exp.base(ds, src);
        t.row(name, vec![Cell::Text(base.len().to_string())]);
    }
    println!("{}", t.render());
}
