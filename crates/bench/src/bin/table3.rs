//! Table 3 — generalization across KG sources (GPT-3.5): the same
//! questions answered with the Freebase-like vs the Wikidata-like
//! source, gains reported relative to CoT.
//!
//! Usage: `cargo run --release -p bench --bin table3` (`FAST=1` for a
//! reduced SimpleQuestions sample).

use bench::run_or_exit as run;
use bench::{model, setup};
use evalkit::{Cell, Table};
use pgg_core::{Cot, PseudoGraphPipeline};

fn main() {
    let fast = std::env::var("FAST").is_ok();
    let exp = setup(if fast { 150 } else { 1000 });
    let llm = model(&exp.world, "gpt-3.5");

    // Bases: one per (dataset, source) combination under test.
    let sq_fb = exp.base(&exp.simpleq, &exp.freebase);
    let sq_wd = exp.base(&exp.simpleq, &exp.wikidata);
    let nq_fb = exp.base(&exp.nature, &exp.freebase);
    let nq_wd = exp.base(&exp.nature, &exp.wikidata);

    let cot_sq = run(
        &Cot,
        &llm,
        None,
        None,
        &exp.embedder,
        &exp.cfg,
        &exp.simpleq,
        0,
    );
    let cot_nq = run(
        &Cot,
        &llm,
        None,
        None,
        &exp.embedder,
        &exp.cfg,
        &exp.nature,
        0,
    );

    let ours = PseudoGraphPipeline::full();
    let fb_sq = run(
        &ours,
        &llm,
        Some(&exp.freebase),
        Some(&sq_fb),
        &exp.embedder,
        &exp.cfg,
        &exp.simpleq,
        0,
    );
    let fb_nq = run(
        &ours,
        &llm,
        Some(&exp.freebase),
        Some(&nq_fb),
        &exp.embedder,
        &exp.cfg,
        &exp.nature,
        0,
    );
    let wd_sq = run(
        &ours,
        &llm,
        Some(&exp.wikidata),
        Some(&sq_wd),
        &exp.embedder,
        &exp.cfg,
        &exp.simpleq,
        0,
    );
    let wd_nq = run(
        &ours,
        &llm,
        Some(&exp.wikidata),
        Some(&nq_wd),
        &exp.embedder,
        &exp.cfg,
        &exp.nature,
        0,
    );

    let mut t = Table::new(
        "Table 3 — KG-source generalization, GPT-3.5 (paper / measured)",
        &["Method", "SimpleQuestions", "Nature Questions"],
    );
    t.row(
        "CoT",
        vec![
            Cell::PaperVsMeasured {
                paper: 22.0,
                measured: cot_sq.score(),
            },
            Cell::PaperVsMeasured {
                paper: 23.2,
                measured: cot_nq.score(),
            },
        ],
    );
    t.row(
        "Ours / Freebase",
        vec![
            Cell::PaperVsMeasured {
                paper: 38.2,
                measured: fb_sq.score(),
            },
            Cell::PaperVsMeasured {
                paper: 26.7,
                measured: fb_nq.score(),
            },
        ],
    );
    t.row(
        "   gain vs CoT",
        vec![
            Cell::PaperVsMeasured {
                paper: 16.2,
                measured: fb_sq.score() - cot_sq.score(),
            },
            Cell::PaperVsMeasured {
                paper: 3.5,
                measured: fb_nq.score() - cot_nq.score(),
            },
        ],
    );
    t.row(
        "Ours / Wikidata",
        vec![
            Cell::PaperVsMeasured {
                paper: 28.1,
                measured: wd_sq.score(),
            },
            Cell::PaperVsMeasured {
                paper: 37.5,
                measured: wd_nq.score(),
            },
        ],
    );
    t.row(
        "   gain vs CoT",
        vec![
            Cell::PaperVsMeasured {
                paper: 6.1,
                measured: wd_sq.score() - cot_sq.score(),
            },
            Cell::PaperVsMeasured {
                paper: 14.3,
                measured: wd_nq.score() - cot_nq.score(),
            },
        ],
    );
    println!("{}", t.render());
    println!(
        "Shape check: Freebase helps SimpleQuestions more ({}), Wikidata helps \
         Nature Questions more ({}).",
        fb_sq.score() - cot_sq.score() > wd_sq.score() - cot_sq.score(),
        wd_nq.score() - cot_nq.score() > fb_nq.score() - cot_nq.score(),
    );
}
