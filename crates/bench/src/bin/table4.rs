//! Table 4 — ablation, GPT-3.5: CoT → Pseudo-Graph only → full
//! Verification, on QALD-10 and Nature Questions.
//!
//! Usage: `cargo run --release -p bench --bin table4`.

use bench::ablation_table;

fn main() {
    let (t, _) = ablation_table(
        "gpt-3.5",
        "Table 4",
        &[(40.5, 23.2), (44.4, 24.3), (48.6, 37.5)],
    );
    println!("{t}");
}
