//! # bench — reproduction harness
//!
//! Shared experiment setup for the per-table binaries: the seeded world,
//! the two KG sources, the three datasets at paper sizes, and both model
//! profiles. Every binary prints paper-vs-measured tables.

#![warn(missing_docs)]

pub mod warn;

use pgg_core::{paper, BaseIndex, PipelineConfig};
use semvec::Embedder;
use simllm::{ModelProfile, SimLlm};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use worldgen::{datasets, derive, generate, Dataset, SourceConfig, World, WorldConfig};

pub use pgg_core;

/// The full experimental fixture.
pub struct Experiment {
    /// Ground-truth world (hidden from the pipeline).
    pub world: Arc<World>,
    /// Simulated Wikidata.
    pub wikidata: kgstore::KgSource,
    /// Simulated Freebase (FB2M-like).
    pub freebase: kgstore::KgSource,
    /// SimpleQuestions-like dataset.
    pub simpleq: Dataset,
    /// QALD-10-like dataset.
    pub qald: Dataset,
    /// Nature-Questions-like dataset.
    pub nature: Dataset,
    /// Shared encoder.
    pub embedder: Embedder,
    /// Pipeline configuration.
    pub cfg: PipelineConfig,
    /// Memo of dataset-level base indexes, keyed on (source name,
    /// question-set hash): sweep arms and bench tables querying the
    /// same (source, dataset) share one build instead of re-encoding
    /// thousands of identical triples per arm.
    base_cache: Mutex<HashMap<(String, u64), Arc<BaseIndex>>>,
}

/// Build the fixture. `simpleq_n` follows the paper's per-model budget
/// (1000 for GPT-3.5, 150 for GPT-4).
pub fn setup(simpleq_n: usize) -> Experiment {
    let world = Arc::new(generate(&WorldConfig {
        seed: paper::WORLD_SEED,
        ..Default::default()
    }));
    let wikidata = derive(&world, &SourceConfig::wikidata());
    let freebase = derive(&world, &SourceConfig::freebase());
    let simpleq = datasets::simpleq::generate(&world, simpleq_n, paper::SIMPLEQ_SEED);
    let qald = datasets::qald::generate(&world, paper::QALD_N, paper::QALD_SEED);
    let nature = datasets::nature::generate(&world, paper::NATURE_N, paper::NATURE_SEED);
    Experiment {
        world,
        wikidata,
        freebase,
        simpleq,
        qald,
        nature,
        embedder: Embedder::paper(),
        cfg: PipelineConfig::default(),
        base_cache: Mutex::new(HashMap::new()),
    }
}

impl Experiment {
    /// Build (or fetch the memoized) per-dataset semantic KG index over
    /// a source (the paper's "constructing the corresponding semantic
    /// KG based on the questions"). Identical (source, question set)
    /// pairs — e.g. the arms of a threshold sweep, or the same dataset
    /// under two models — share one build.
    pub fn base(&self, dataset: &Dataset, source: &kgstore::KgSource) -> Arc<BaseIndex> {
        let mut qhash = kgstore::hash::stable_str_hash(source.name.as_str());
        for q in &dataset.questions {
            qhash = kgstore::hash::mix2(qhash, kgstore::hash::stable_str_hash(&q.text));
        }
        let key = (source.name.clone(), qhash);
        if let Some(b) = self.base_cache.lock().unwrap().get(&key) {
            return Arc::clone(b);
        }
        let built = Arc::new(BaseIndex::for_questions(
            source,
            &self.embedder,
            &self.cfg,
            dataset.questions.iter().map(|q| q.text.as_str()),
        ));
        self.base_cache
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&built));
        built
    }
}

/// Shared ablation runner for Tables 4 and 5: CoT → Pseudo-Graph only
/// → full Verification on QALD-10 and Nature Questions, rendered as a
/// paper-vs-measured table.
pub fn ablation_table(
    model_name: &str,
    title: &str,
    paper_rows: &[(f64, f64); 3],
) -> (String, [(pgg_core::RunResult, pgg_core::RunResult); 3]) {
    use crate::run_or_exit as run;
    use evalkit::{Cell, Table};
    use pgg_core::{Cot, Method, PseudoGraphPipeline};

    let exp = setup(50);
    let llm = model(&exp.world, model_name);
    let qald_base = exp.base(&exp.qald, &exp.wikidata);
    let nq_base = exp.base(&exp.nature, &exp.wikidata);

    let cot = Cot;
    let pseudo = PseudoGraphPipeline::pseudo_only();
    let full = PseudoGraphPipeline::full();

    let mut results = Vec::new();
    for m in [&cot as &dyn Method, &pseudo, &full] {
        let qald = run(
            m,
            &llm,
            Some(&exp.wikidata),
            Some(&qald_base),
            &exp.embedder,
            &exp.cfg,
            &exp.qald,
            0,
        );
        let nq = run(
            m,
            &llm,
            Some(&exp.wikidata),
            Some(&nq_base),
            &exp.embedder,
            &exp.cfg,
            &exp.nature,
            0,
        );
        results.push((qald, nq));
    }
    let results: [(pgg_core::RunResult, pgg_core::RunResult); 3] =
        results.try_into().expect("three rows");

    let mut t = Table::new(
        format!("{title} — ablation, {model_name} (paper / measured)"),
        &["Method", "QALD-10 (Hit@1)", "Nature Questions (ROUGE-L)"],
    );
    let labels = ["CoT", "Pseudo-Graph", "Verification (Ours)"];
    for i in 0..3 {
        t.row(
            labels[i],
            vec![
                Cell::PaperVsMeasured {
                    paper: paper_rows[i].0,
                    measured: results[i].0.score(),
                },
                Cell::PaperVsMeasured {
                    paper: paper_rows[i].1,
                    measured: results[i].1.score(),
                },
            ],
        );
    }
    t.row(
        "gain: PG vs CoT",
        vec![
            Cell::PaperVsMeasured {
                paper: paper_rows[1].0 - paper_rows[0].0,
                measured: results[1].0.score() - results[0].0.score(),
            },
            Cell::PaperVsMeasured {
                paper: paper_rows[1].1 - paper_rows[0].1,
                measured: results[1].1.score() - results[0].1.score(),
            },
        ],
    );
    t.row(
        "gain: Verif vs PG",
        vec![
            Cell::PaperVsMeasured {
                paper: paper_rows[2].0 - paper_rows[1].0,
                measured: results[2].0.score() - results[1].0.score(),
            },
            Cell::PaperVsMeasured {
                paper: paper_rows[2].1 - paper_rows[1].1,
                measured: results[2].1.score() - results[1].1.score(),
            },
        ],
    );
    (t.render(), results)
}

/// Run one (method × dataset) experiment, exiting the process with a
/// printed error on runner misconfiguration. The bench binaries all
/// funnel through this so a typed [`pgg_core::RunError`] becomes a
/// clean nonzero exit instead of a panic backtrace.
#[allow(clippy::too_many_arguments)] // mirrors pgg_core::run
pub fn run_or_exit(
    method: &dyn pgg_core::Method,
    llm: &dyn simllm::LanguageModel,
    source: Option<&kgstore::KgSource>,
    base: Option<&BaseIndex>,
    embedder: &Embedder,
    cfg: &PipelineConfig,
    dataset: &Dataset,
    threads: usize,
) -> pgg_core::RunResult {
    pgg_core::run(method, llm, source, base, embedder, cfg, dataset, threads).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Install the process-wide monotonic wall clock into
/// [`pgg_core::timing`], so bench runs populate the wall half of the
/// per-stage timing breakdown. Library code never reads wall time
/// directly (the determinism lint bans it outside `crates/bench`);
/// binaries that want real nanoseconds opt in here, and everything
/// else — unit tests, the table binaries whose output is diffed —
/// keeps the zero clock and stays schedule-independent.
pub fn install_wall_clock() {
    fn monotonic_ns() -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static T0: OnceLock<Instant> = OnceLock::new();
        T0.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
    pgg_core::install_wall_clock(monotonic_ns);
}

/// Construct a model by short name (`"gpt-3.5"` / `"gpt-4"`).
pub fn model(world: &Arc<World>, which: &str) -> SimLlm {
    let profile = match which {
        "gpt-3.5" => ModelProfile::gpt35_sim(),
        "gpt-4" => ModelProfile::gpt4_sim(),
        other => panic!("unknown model {other}"),
    };
    SimLlm::new(world.clone(), profile)
}
