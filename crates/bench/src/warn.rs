//! Shared non-fatal warning machinery for the bench binaries.
//!
//! `perf` and `soak` both report advisory regressions the same way —
//! printed as `WARN:` lines on stderr and carried into the JSON
//! report's `"warnings"` array — so CI can grep one format and gate
//! on specific texts (e.g. fail the build while a known warning is
//! still present in a committed report).

/// Collects non-fatal warnings for one bench report.
#[derive(Default)]
pub struct WarnLog {
    warnings: Vec<String>,
}

impl WarnLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (and print to stderr) one warning.
    pub fn warn(&mut self, msg: String) {
        eprintln!("WARN: {msg}");
        self.warnings.push(msg);
    }

    /// Warn when `fast_ms` exceeds `ref_ms` by more than `tolerance`
    /// (fractional, e.g. `0.05` = 5%). The margin absorbs run-to-run
    /// noise between two arms doing near-identical work — without it,
    /// an optimized arm that converges onto the reference arm's cost
    /// turns the comparison into a coin flip on scheduler jitter.
    /// Returns whether the warning fired.
    pub fn slower_than(
        &mut self,
        fast_ms: f64,
        ref_ms: f64,
        tolerance: f64,
        msg: impl FnOnce() -> String,
    ) -> bool {
        if fast_ms > ref_ms * (1.0 + tolerance) {
            self.warn(msg());
            true
        } else {
            false
        }
    }

    /// The warnings collected so far.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Whether nothing has fired.
    pub fn is_empty(&self) -> bool {
        self.warnings.is_empty()
    }

    /// The report's `"warnings": [...]` element contents (escaped,
    /// comma-joined, no surrounding brackets).
    pub fn json_array(&self) -> String {
        self.warnings
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Minimal JSON string escaping for the hand-formatted bench reports:
/// warning texts are ASCII diagnostics, so quotes and backslashes are
/// the only characters that could break the encoding.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_absorbs_noise_but_not_regressions() {
        let mut log = WarnLog::new();
        assert!(!log.slower_than(102.0, 100.0, 0.05, || "noise".into()));
        assert!(log.is_empty());
        assert!(log.slower_than(110.0, 100.0, 0.05, || "real".into()));
        assert_eq!(log.warnings(), ["real"]);
        assert_eq!(log.json_array(), "\"real\"");
    }

    #[test]
    fn escaping_handles_quotes_and_backslashes() {
        assert_eq!(json_escape(r#"a "b" \c"#), r#"a \"b\" \\c"#);
    }
}
