//! End-to-end per-question latency of every method — the operational
//! cost profile of Table 2's rows (IO is one LLM call; the full
//! pipeline is pseudo-graph + retrieval + verification + answering).

use criterion::{criterion_group, criterion_main, Criterion};
use pgg_core::{
    BaseIndex, Cot, Io, Method, PipelineConfig, PseudoGraphPipeline, QaContext, Qsm,
    SelfConsistency,
};
use semvec::Embedder;
use simllm::{ModelProfile, SimLlm};
use std::sync::Arc;
use worldgen::{derive, generate, SourceConfig, WorldConfig};

fn bench_methods(c: &mut Criterion) {
    let world = Arc::new(generate(&WorldConfig::default()));
    let source = derive(&world, &SourceConfig::wikidata());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let ds = worldgen::datasets::qald::generate(&world, 50, 9);
    let base = BaseIndex::for_questions(
        &source,
        &emb,
        &cfg,
        ds.questions.iter().map(|q| q.text.as_str()),
    );

    let mut group = c.benchmark_group("per_question");
    let io = Io;
    let cot = Cot;
    let sc = SelfConsistency;
    let qsm = Qsm;
    let pseudo = PseudoGraphPipeline::pseudo_only();
    let ours = PseudoGraphPipeline::full();
    let methods: [(&str, &dyn Method); 6] = [
        ("io", &io),
        ("cot", &cot),
        ("sc", &sc),
        ("qsm", &qsm),
        ("pseudo_only", &pseudo),
        ("ours_full", &ours),
    ];
    for (name, m) in methods {
        group.bench_function(name, |b| {
            let ctx = QaContext {
                llm: &llm,
                source: Some(&source),
                base: Some(&base),
                embedder: &emb,
                cfg: &cfg,
            };
            let mut i = 0;
            b.iter(|| {
                let q = &ds.questions[i % ds.questions.len()];
                i += 1;
                std::hint::black_box(m.answer(&ctx, q))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_methods
}
criterion_main!(benches);
