//! Component microbenchmarks: encoder throughput, exact top-k latency
//! vs index size, Cypher parse+execute, ROUGE-L scoring, and the
//! semantic-querying + pruning stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgg_core::{ground_graph, BaseIndex, PipelineConfig};
use semvec::{Embedder, VecIndex};
use std::sync::Arc;
use worldgen::{derive, generate, SourceConfig, WorldConfig};

fn bench_embedding(c: &mut Criterion) {
    let emb = Embedder::paper();
    let sentences = [
        "Yao Ming place of birth Shanghai",
        "Andes covers Peru and several other countries in the south",
        "Lake Superior area 82000 located in the United States",
    ];
    let mut g = c.benchmark_group("embedding");
    g.throughput(Throughput::Elements(sentences.len() as u64));
    g.bench_function("encode_3_sentences", |b| {
        b.iter(|| {
            for s in &sentences {
                std::hint::black_box(emb.encode(s));
            }
        })
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let emb = Embedder::paper();
    let mut group = c.benchmark_group("vecindex_topk");
    for &n in &[1_000usize, 10_000, 40_000] {
        let index = VecIndex::from_vectors(
            emb.dim(),
            (0..n).map(|i| emb.encode(&format!("entity {i} relation value {}", i % 97))),
        );
        let q = emb.encode("entity 500 relation value 14");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("top10", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(index.top_k(&q, 10)))
        });
        group.bench_with_input(BenchmarkId::new("top10_jittered", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(index.top_k_noisy(&q, 10, 0.3, 42)))
        });
    }
    group.finish();
}

fn bench_cypher(c: &mut Criterion) {
    let script = r#"
        CREATE (andes:MountainRange {name: "Andes", type: "mountain range"})
        CREATE (andes)-[:COVERS]->(ecuador:Country {name: "Ecuador"})
        CREATE (andes)-[:COVERS]->(colombia:Country {name: "Colombia"})
        CREATE (andes)-[:COVERS]->(peru:Country {name: "Peru"})
        CREATE (himalayas:MountainRange {name: "Himalayas"})
        CREATE (himalayas)-[:COVERS]->(india:Country {name: "India"})
        CREATE (himalayas)-[:COVERS]->(nepal:Country {name: "Nepal"})
    "#;
    c.bench_function("cypher_parse", |b| {
        b.iter(|| std::hint::black_box(cypher::parse(script).unwrap()))
    });
    c.bench_function("cypher_parse_exec_decode", |b| {
        b.iter(|| std::hint::black_box(cypher::decode_script(script).unwrap()))
    });
}

fn bench_rouge(c: &mut Criterion) {
    let candidate = "Based on the graph, the Andes covers Argentina, Bolivia, Chile, \
                     Colombia, Ecuador, and Peru.";
    let refs = vec![
        "As far as I know, it includes Argentina, Bolivia, Chile, Colombia, Ecuador, and Peru."
            .to_string(),
        "There are 6 answers commonly mentioned: Argentina, Bolivia, Chile, Colombia, \
         Ecuador, and Peru."
            .to_string(),
        "To be comprehensive, the full set is Argentina, Bolivia, Chile, Colombia, \
         Ecuador, and Peru."
            .to_string(),
    ];
    c.bench_function("rouge_l_multi", |b| {
        b.iter(|| std::hint::black_box(evalkit::rouge_l_multi(candidate, &refs)))
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let world = Arc::new(generate(&WorldConfig::default()));
    let source = derive(&world, &SourceConfig::wikidata());
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let ds = worldgen::datasets::qald::generate(&world, 100, 5);
    let base = BaseIndex::for_questions(
        &source,
        &emb,
        &cfg,
        ds.questions.iter().map(|q| q.text.as_str()),
    );
    let pseudo = vec![
        kgstore::StrTriple::new("Silver River", "FLOWS_THROUGH", "Norland"),
        kgstore::StrTriple::new("Silver River", "type", "river"),
    ];
    c.bench_function("semantic_query_and_prune", |b| {
        b.iter(|| std::hint::black_box(ground_graph(&source, &base, &emb, &cfg, &pseudo)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_embedding, bench_topk, bench_cypher, bench_rouge, bench_retrieval
}
criterion_main!(benches);
