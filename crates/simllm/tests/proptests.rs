//! Property-based tests of the verification-output parser: the layer
//! that turns (possibly garbled, possibly truncated) LLM text back into
//! triples must never panic and must skip anything malformed — it sits
//! directly downstream of the fallible transport, where truncation
//! hands it arbitrary prefixes of valid output.

use kgstore::StrTriple;
use proptest::prelude::*;
use simllm::behavior::verify::render_fixed;
use simllm::parse_triple_lines;

fn triple() -> impl Strategy<Value = StrTriple> {
    // Component text without the <>-delimiter characters themselves.
    let part = "[a-zA-Z0-9 _.,'-]{1,16}";
    (part, part, part).prop_map(|(s, p, o)| StrTriple::new(s, p, o))
}

proptest! {
    /// Total on arbitrary input: garbage in, no panic out.
    #[test]
    fn never_panics_on_arbitrary_text(text in "\\PC{0,300}") {
        let _ = parse_triple_lines(&text);
    }

    /// Total on arbitrary *bytes-as-lines* soup with angle brackets
    /// sprinkled in (the adversarial shape for this parser).
    #[test]
    fn never_panics_on_bracket_soup(text in "[<> a-z\n]{0,200}") {
        let _ = parse_triple_lines(&text);
    }

    /// Round-trip: render then parse recovers exactly the triples.
    #[test]
    fn roundtrips_rendered_output(ts in proptest::collection::vec(triple(), 0..8)) {
        let parsed = parse_triple_lines(&render_fixed(&ts));
        prop_assert_eq!(parsed, ts);
    }

    /// Any char-boundary prefix of valid output (what a truncated
    /// completion delivers) parses to a prefix of the triple list —
    /// complete lines survive, the torn line is skipped, no panic.
    #[test]
    fn truncated_output_parses_to_a_prefix(
        ts in proptest::collection::vec(triple(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let full = render_fixed(&ts);
        let mut cut = (full.len() as f64 * cut_frac) as usize;
        while cut > 0 && !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let parsed = parse_triple_lines(&full[..cut]);
        prop_assert!(parsed.len() <= ts.len());
        prop_assert_eq!(&parsed[..], &ts[..parsed.len()], "prefix property");
    }

    /// Garbage lines interleaved with valid ones are skipped without
    /// disturbing the valid triples.
    #[test]
    fn garbage_lines_are_skipped(
        ts in proptest::collection::vec(triple(), 1..6),
        junk in proptest::collection::vec("[a-zA-Z<> ]{0,24}", 1..6),
    ) {
        let mut text = String::new();
        for (i, t) in ts.iter().enumerate() {
            // Junk that is not itself <a> <b> <c> shaped.
            let j = &junk[i % junk.len()];
            let is_tripleish = {
                let j = j.trim();
                j.starts_with('<')
                    && j.ends_with('>')
                    && j[1..j.len().saturating_sub(1)].split("> <").count() == 3
            };
            if !is_tripleish {
                text.push_str(j);
                text.push('\n');
            }
            text.push_str(&t.to_string());
            text.push('\n');
        }
        prop_assert_eq!(parse_triple_lines(&text), ts);
    }
}
