//! Property-based tests of the verification-output parser: the layer
//! that turns (possibly garbled, possibly truncated) LLM text back into
//! triples must never panic and must skip anything malformed — it sits
//! directly downstream of the fallible transport, where truncation
//! hands it arbitrary prefixes of valid output. Plus the fault plan's
//! keying contract: a question's fault weather is a pure function of
//! `(seed, question id)`, independent of arrival order.

use kgstore::StrTriple;
use proptest::prelude::*;
use simllm::behavior::verify::render_fixed;
use simllm::parse_triple_lines;
use simllm::{FaultPlan, FaultyLlm, LanguageModel, LlmTask, ModelProfile, SimLlm};
use std::sync::{Arc, OnceLock};
use worldgen::{datasets, generate, Question, World, WorldConfig};

fn triple() -> impl Strategy<Value = StrTriple> {
    // Component text without the <>-delimiter characters themselves.
    let part = "[a-zA-Z0-9 _.,'-]{1,16}";
    (part, part, part).prop_map(|(s, p, o)| StrTriple::new(s, p, o))
}

proptest! {
    /// Total on arbitrary input: garbage in, no panic out.
    #[test]
    fn never_panics_on_arbitrary_text(text in "\\PC{0,300}") {
        let _ = parse_triple_lines(&text);
    }

    /// Total on arbitrary *bytes-as-lines* soup with angle brackets
    /// sprinkled in (the adversarial shape for this parser).
    #[test]
    fn never_panics_on_bracket_soup(text in "[<> a-z\n]{0,200}") {
        let _ = parse_triple_lines(&text);
    }

    /// Round-trip: render then parse recovers exactly the triples.
    #[test]
    fn roundtrips_rendered_output(ts in proptest::collection::vec(triple(), 0..8)) {
        let parsed = parse_triple_lines(&render_fixed(&ts));
        prop_assert_eq!(parsed, ts);
    }

    /// Any char-boundary prefix of valid output (what a truncated
    /// completion delivers) parses to a prefix of the triple list —
    /// complete lines survive, the torn line is skipped, no panic.
    #[test]
    fn truncated_output_parses_to_a_prefix(
        ts in proptest::collection::vec(triple(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let full = render_fixed(&ts);
        let mut cut = (full.len() as f64 * cut_frac) as usize;
        while cut > 0 && !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let parsed = parse_triple_lines(&full[..cut]);
        prop_assert!(parsed.len() <= ts.len());
        prop_assert_eq!(&parsed[..], &ts[..parsed.len()], "prefix property");
    }

    /// Garbage lines interleaved with valid ones are skipped without
    /// disturbing the valid triples.
    #[test]
    fn garbage_lines_are_skipped(
        ts in proptest::collection::vec(triple(), 1..6),
        junk in proptest::collection::vec("[a-zA-Z<> ]{0,24}", 1..6),
    ) {
        let mut text = String::new();
        for (i, t) in ts.iter().enumerate() {
            // Junk that is not itself <a> <b> <c> shaped.
            let j = &junk[i % junk.len()];
            let is_tripleish = {
                let j = j.trim();
                j.starts_with('<')
                    && j.ends_with('>')
                    && j[1..j.len().saturating_sub(1)].split("> <").count() == 3
            };
            if !is_tripleish {
                text.push_str(j);
                text.push('\n');
            }
            text.push_str(&t.to_string());
            text.push('\n');
        }
        prop_assert_eq!(parse_triple_lines(&text), ts);
    }
}

fn weather_fixture() -> &'static (Arc<World>, Vec<Question>) {
    static FIX: OnceLock<(Arc<World>, Vec<Question>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let questions = datasets::simpleq::generate(&world, 24, 31).questions;
        (world, questions)
    })
}

/// First-attempt outcome per question, presented in `order`, under a
/// fresh decorator built from `plan` — sorted by question id so
/// different presentation orders are comparable.
fn first_attempt_outcomes(
    world: &Arc<World>,
    order: &[&Question],
    plan: FaultPlan,
) -> Vec<(String, String)> {
    let faulty = FaultyLlm::new(SimLlm::new(world.clone(), ModelProfile::gpt35_sim()), plan);
    let mut v: Vec<(String, String)> = order
        .iter()
        .map(|q| {
            let res = match faulty.complete("p", &LlmTask::Io { question: q }) {
                Ok(c) => format!("ok:{}", c.text),
                Err(e) => format!("err:{}", e.kind()),
            };
            (q.id.clone(), res)
        })
        .collect();
    v.sort();
    v
}

proptest! {
    /// A question's fault weather — uniform or storm — is keyed purely
    /// on `(seed, question id, attempt)`: rotating the order in which
    /// questions first hit the decorator changes nothing per question.
    #[test]
    fn fault_weather_is_arrival_order_independent(
        seed in any::<u64>(),
        total in 0.0f64..1.0,
        frac in 0.0f64..1.0,
        rotate in 0usize..24,
        storm in any::<bool>(),
    ) {
        let (world, questions) = weather_fixture();
        let plan = if storm {
            FaultPlan::storm(seed, frac, total)
        } else {
            FaultPlan::uniform(seed, total)
        };
        let forward: Vec<&Question> = questions.iter().collect();
        let mut rotated = forward.clone();
        rotated.rotate_left(rotate % forward.len());
        prop_assert_eq!(
            first_attempt_outcomes(world, &forward, plan.clone()),
            first_attempt_outcomes(world, &rotated, plan),
            "per-question weather must not depend on arrival order"
        );
    }
}

/// Deterministic counterpart of the order-independence proptest, so
/// the keying contract is exercised even where the `proptest`
/// dependency is stubbed out: uniform and storm plans, forward vs
/// rotated and reversed presentation orders.
#[test]
fn fault_weather_order_independence_on_seeded_sweep() {
    let (world, questions) = weather_fixture();
    let forward: Vec<&Question> = questions.iter().collect();
    let mut rotated = forward.clone();
    rotated.rotate_left(7);
    let reversed: Vec<&Question> = questions.iter().rev().collect();
    for plan in [
        FaultPlan::uniform(0xFA57, 0.6),
        FaultPlan::storm(0xFA58, 0.4, 1.0),
        FaultPlan::none(0xFA59),
    ] {
        let base = first_attempt_outcomes(world, &forward, plan.clone());
        assert_eq!(
            base,
            first_attempt_outcomes(world, &rotated, plan.clone()),
            "rotated order changed per-question weather"
        );
        assert_eq!(
            base,
            first_attempt_outcomes(world, &reversed, plan),
            "reversed order changed per-question weather"
        );
    }
}
