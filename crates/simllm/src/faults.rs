//! Deterministic fault injection for the LLM transport.
//!
//! [`FaultyLlm`] wraps any [`LanguageModel`] and injects the
//! [`LlmError`] taxonomy at configurable per-task rates. Every draw is
//! keyed on `(plan seed, question id, task kind, sample index, attempt)`
//! through the same stable hashing the rest of the workspace uses, so a
//! fault schedule is a pure function of the seed and the requests made
//! for each question — independent of thread interleaving. That is what
//! makes a parallel chaos run byte-identical to a serial one, and two
//! runs with the same seed identical to each other.
//!
//! The *attempt* component is tracked per `(question, task, sample)`
//! inside the decorator: a retry of the same request is a new draw (the
//! transport may recover), while re-asking an unrelated question never
//! shifts another question's schedule. Create a fresh `FaultyLlm` per
//! experiment run — attempt counters accumulate for the decorator's
//! lifetime.

use crate::model::{Completion, LanguageModel, LlmError, LlmTask};
use kgstore::hash::{mix2, stable_str_hash, unit_f64, FxHashMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-fault-kind injection rates (probability per attempt, each in
/// `[0, 1]`, summing to at most 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of a timeout.
    pub timeout: f64,
    /// Probability of a rate-limit rejection.
    pub rate_limited: f64,
    /// Probability of a transient transport failure.
    pub transient: f64,
    /// Probability of a truncated completion.
    pub truncated: f64,
    /// Probability of an empty completion body.
    pub empty: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        Self::uniform(0.0)
    }

    /// Split a total fault rate equally across the five kinds.
    pub fn uniform(total: f64) -> Self {
        let each = total / 5.0;
        Self {
            timeout: each,
            rate_limited: each,
            transient: each,
            truncated: each,
            empty: each,
        }
    }

    /// Total probability that an attempt faults.
    pub fn total(&self) -> f64 {
        self.timeout + self.rate_limited + self.transient + self.truncated + self.empty
    }
}

/// A question-keyed fault storm: a deterministically-chosen fraction
/// of questions faults at its own rates while the rest follow the
/// plan's normal rates. Membership is a pure function of `(plan seed,
/// question id)` — *not* of arrival order, call order, or what other
/// questions are in flight — so a serving run that reorders arrivals
/// (or replays a subset) sees the same per-question weather.
#[derive(Debug, Clone)]
pub struct Storm {
    /// Fraction of questions in the storm, in `[0, 1]`.
    pub frac: f64,
    /// Rates applied to storm members, for every task kind.
    pub rates: FaultRates,
}

/// A reproducible fault schedule: seed, default rates, optional
/// per-task-kind overrides (task kinds as in [`LlmTask::kind`]), and
/// an optional question-keyed [`Storm`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Schedule seed; same seed ⇒ same faults for the same requests.
    pub seed: u64,
    /// Rates applied to tasks without an override.
    pub default: FaultRates,
    /// `(task kind, rates)` overrides, first match wins.
    pub per_task: Vec<(String, FaultRates)>,
    /// Optional storm; members use its rates ahead of any override.
    pub storm: Option<Storm>,
}

impl FaultPlan {
    /// A plan injecting nothing (useful as a control arm).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            default: FaultRates::none(),
            per_task: Vec::new(),
            storm: None,
        }
    }

    /// A plan with `total` fault probability split uniformly across
    /// kinds, for every task.
    pub fn uniform(seed: u64, total: f64) -> Self {
        Self {
            seed,
            default: FaultRates::uniform(total),
            per_task: Vec::new(),
            storm: None,
        }
    }

    /// A storm plan: a seeded `frac` of questions faults at
    /// `storm_total` (split uniformly across kinds), everyone else is
    /// clean. The serving soak uses this as its bursty-weather arm.
    pub fn storm(seed: u64, frac: f64, storm_total: f64) -> Self {
        Self::none(seed).with_storm(frac, FaultRates::uniform(storm_total))
    }

    /// Override the rates for one task kind.
    pub fn with_task_rates(mut self, kind: &str, rates: FaultRates) -> Self {
        self.per_task.push((kind.to_string(), rates));
        self
    }

    /// Add a question-keyed storm (see [`Storm`]).
    pub fn with_storm(mut self, frac: f64, rates: FaultRates) -> Self {
        self.storm = Some(Storm { frac, rates });
        self
    }

    /// Whether `qid` is in this plan's storm. Pure in `(seed, qid)`:
    /// the membership draw uses its own salted hash stream, so it
    /// never correlates with the per-attempt fault draws.
    pub fn in_storm(&self, qid: &str) -> bool {
        match &self.storm {
            Some(s) => unit_f64(mix2(self.seed ^ 0x5707_B125, stable_str_hash(qid))) < s.frac,
            None => false,
        }
    }

    fn rates_for(&self, qid: &str, kind: &str) -> &FaultRates {
        if self.in_storm(qid) {
            return &self.storm.as_ref().expect("in_storm implies storm").rates;
        }
        self.per_task
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, r)| r)
            .unwrap_or(&self.default)
    }
}

/// The fault-injecting decorator.
pub struct FaultyLlm<M> {
    inner: M,
    plan: FaultPlan,
    /// `(question, task, sample)` slot → next attempt number.
    attempts: Mutex<FxHashMap<u64, u32>>,
    injected: [AtomicU64; 5],
}

const FAULT_KINDS: [&str; 5] = ["timeout", "rate-limited", "transient", "truncated", "empty"];

impl<M: LanguageModel> FaultyLlm<M> {
    /// Wrap a model with a fault plan.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            attempts: Mutex::new(FxHashMap::default()),
            injected: Default::default(),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Faults injected so far, by kind slug.
    pub fn injected_by_kind(&self) -> Vec<(&'static str, u64)> {
        FAULT_KINDS
            .iter()
            .zip(&self.injected)
            .map(|(k, c)| (*k, c.load(Ordering::Relaxed)))
            .collect()
    }

    fn record(&self, idx: usize) {
        self.injected[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// Cut `text` at roughly `frac` of its bytes, backing off to the
/// nearest character boundary.
fn truncate_at_fraction(text: &str, frac: f64) -> String {
    let mut cut = ((text.len() as f64) * frac) as usize;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

impl<M: LanguageModel> LanguageModel for FaultyLlm<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Result<Completion, LlmError> {
        let kind = task.kind();
        let slot = mix2(
            mix2(stable_str_hash(&task.question().id), stable_str_hash(kind)),
            task.sample_index() as u64,
        );
        let attempt = {
            let mut m = self.attempts.lock();
            let c = m.entry(slot).or_default();
            let a = *c;
            *c += 1;
            a
        };
        let key = mix2(mix2(self.plan.seed, slot), 0xFA17_0000 + attempt as u64);
        let u = unit_f64(key);
        let r = self.plan.rates_for(&task.question().id, kind);
        let mut edge = r.timeout;
        if u < edge {
            self.record(0);
            return Err(LlmError::Timeout);
        }
        edge += r.rate_limited;
        if u < edge {
            self.record(1);
            // Deterministic provider-suggested wait in 50–200 ms.
            let retry_after_ms = 50 * (1 + mix2(key, 0xB0) % 4);
            return Err(LlmError::RateLimited { retry_after_ms });
        }
        edge += r.transient;
        if u < edge {
            self.record(2);
            return Err(LlmError::Transient);
        }
        edge += r.truncated;
        if u < edge {
            self.record(3);
            // Cut the real completion at a seeded 20–85% of its bytes.
            let full = self.inner.complete(prompt, task)?;
            let frac = 0.20 + 0.65 * unit_f64(mix2(key, 0xB1));
            return Err(LlmError::Truncated {
                text: truncate_at_fraction(&full.text, frac),
            });
        }
        edge += r.empty;
        if u < edge {
            self.record(4);
            return Err(LlmError::Empty);
        }
        self.inner.complete(prompt, task)
    }

    fn call_count(&self) -> usize {
        self.inner.call_count()
    }

    fn tokens_processed(&self) -> usize {
        self.inner.tokens_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, generate, WorldConfig};

    fn fixture() -> (Arc<worldgen::World>, worldgen::Dataset) {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let ds = simpleq::generate(&world, 30, 5);
        (world, ds)
    }

    fn sim(world: &Arc<worldgen::World>) -> SimLlm {
        SimLlm::new(world.clone(), ModelProfile::gpt35_sim())
    }

    /// Replay the same request sequence and collect each outcome's kind.
    fn schedule(llm: &FaultyLlm<SimLlm>, ds: &worldgen::Dataset, attempts: u32) -> Vec<String> {
        let mut out = Vec::new();
        for q in &ds.questions {
            for _ in 0..attempts {
                out.push(match llm.complete("p", &LlmTask::Cot { question: q }) {
                    Ok(c) => format!("ok:{}", c.text),
                    Err(e) => format!("err:{}", e.kind()),
                });
            }
        }
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        let (world, ds) = fixture();
        let a = FaultyLlm::new(sim(&world), FaultPlan::uniform(42, 0.5));
        let b = FaultyLlm::new(sim(&world), FaultPlan::uniform(42, 0.5));
        assert_eq!(schedule(&a, &ds, 3), schedule(&b, &ds, 3));
        assert!(a.faults_injected() > 0, "rate 0.5 must inject something");
    }

    #[test]
    fn different_seed_different_schedule() {
        let (world, ds) = fixture();
        let a = FaultyLlm::new(sim(&world), FaultPlan::uniform(1, 0.5));
        let b = FaultyLlm::new(sim(&world), FaultPlan::uniform(2, 0.5));
        assert_ne!(schedule(&a, &ds, 3), schedule(&b, &ds, 3));
    }

    #[test]
    fn rate_zero_is_transparent() {
        let (world, ds) = fixture();
        let plain = sim(&world);
        let faulty = FaultyLlm::new(sim(&world), FaultPlan::none(7));
        for q in &ds.questions {
            let task = LlmTask::Cot { question: q };
            assert_eq!(
                plain.complete("p", &task).unwrap(),
                faulty.complete("p", &task).unwrap()
            );
        }
        assert_eq!(faulty.faults_injected(), 0);
    }

    #[test]
    fn question_schedules_are_independent_of_other_questions() {
        let (world, ds) = fixture();
        let a = FaultyLlm::new(sim(&world), FaultPlan::uniform(9, 0.4));
        let b = FaultyLlm::new(sim(&world), FaultPlan::uniform(9, 0.4));
        // `a` serves all questions in order; `b` serves only the last —
        // the last question's outcomes must match anyway.
        let q = ds.questions.last().unwrap();
        let all = schedule(&a, &ds, 2);
        let solo: Vec<String> = (0..2)
            .map(|_| match b.complete("p", &LlmTask::Cot { question: q }) {
                Ok(c) => format!("ok:{}", c.text),
                Err(e) => format!("err:{}", e.kind()),
            })
            .collect();
        assert_eq!(&all[all.len() - 2..], &solo[..]);
    }

    #[test]
    fn truncation_carries_a_proper_prefix() {
        let (world, ds) = fixture();
        let plan = FaultPlan {
            seed: 3,
            default: FaultRates {
                timeout: 0.0,
                rate_limited: 0.0,
                transient: 0.0,
                truncated: 1.0,
                empty: 0.0,
            },
            per_task: Vec::new(),
            storm: None,
        };
        let faulty = FaultyLlm::new(sim(&world), plan);
        let plain = sim(&world);
        for q in &ds.questions {
            let task = LlmTask::Cot { question: q };
            let full = plain.complete("p", &task).unwrap().text;
            match faulty.complete("p", &task) {
                Err(LlmError::Truncated { text }) => {
                    assert!(full.starts_with(&text), "{text:?} not a prefix of {full:?}");
                    assert!(text.len() < full.len());
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn per_task_overrides_apply() {
        let (world, ds) = fixture();
        let plan = FaultPlan::none(11).with_task_rates("pseudo-graph", FaultRates::uniform(1.0));
        let faulty = FaultyLlm::new(sim(&world), plan);
        let q = &ds.questions[0];
        assert!(faulty.complete("p", &LlmTask::Cot { question: q }).is_ok());
        assert!(faulty
            .complete("p", &LlmTask::PseudoGraph { question: q })
            .is_err());
    }

    #[test]
    fn fault_rate_is_roughly_respected() {
        let (world, _) = fixture();
        let ds = simpleq::generate(&world, 200, 6);
        let faulty = FaultyLlm::new(sim(&world), FaultPlan::uniform(13, 0.3));
        let mut errs = 0;
        for q in &ds.questions {
            if faulty.complete("p", &LlmTask::Io { question: q }).is_err() {
                errs += 1;
            }
        }
        let rate = errs as f64 / 200.0;
        assert!((0.18..0.42).contains(&rate), "observed fault rate {rate}");
    }

    #[test]
    fn storm_members_fault_and_bystanders_stay_clean() {
        let (world, ds) = fixture();
        let plan = FaultPlan::storm(21, 0.5, 1.0);
        let faulty = FaultyLlm::new(sim(&world), plan.clone());
        let mut members = 0;
        for q in &ds.questions {
            let res = faulty.complete("p", &LlmTask::Io { question: q });
            if plan.in_storm(&q.id) {
                members += 1;
                assert!(res.is_err(), "storm member {} must fault", q.id);
            } else {
                assert!(res.is_ok(), "bystander {} must be clean", q.id);
            }
        }
        assert!(
            (6..=24).contains(&members),
            "a 0.5 storm over 30 questions: {members} members"
        );
    }

    #[test]
    fn storm_membership_is_arrival_order_independent() {
        let (world, ds) = fixture();
        let outcomes = |order: Vec<&worldgen::Question>| -> Vec<(String, String)> {
            let faulty = FaultyLlm::new(sim(&world), FaultPlan::storm(22, 0.4, 0.9));
            let mut v: Vec<(String, String)> = order
                .into_iter()
                .map(|q| {
                    let res = match faulty.complete("p", &LlmTask::Io { question: q }) {
                        Ok(c) => format!("ok:{}", c.text),
                        Err(e) => format!("err:{}", e.kind()),
                    };
                    (q.id.clone(), res)
                })
                .collect();
            v.sort();
            v
        };
        let forward: Vec<&worldgen::Question> = ds.questions.iter().collect();
        let reversed: Vec<&worldgen::Question> = ds.questions.iter().rev().collect();
        assert_eq!(
            outcomes(forward),
            outcomes(reversed),
            "per-question weather must not depend on arrival order"
        );
    }

    #[test]
    fn storm_takes_precedence_over_task_overrides() {
        let (world, ds) = fixture();
        let plan = FaultPlan::none(23)
            .with_task_rates("io", FaultRates::uniform(1.0))
            .with_storm(1.0, FaultRates::none());
        let faulty = FaultyLlm::new(sim(&world), plan);
        // Everyone is in the storm, and the storm says: clean.
        let q = &ds.questions[0];
        assert!(faulty.complete("p", &LlmTask::Io { question: q }).is_ok());
    }

    #[test]
    fn truncate_at_fraction_respects_char_boundaries() {
        let s = "héllo wörld ←";
        for i in 0..=20 {
            let frac = i as f64 / 20.0;
            let cut = truncate_at_fraction(s, frac);
            assert!(s.starts_with(&cut));
        }
    }
}
