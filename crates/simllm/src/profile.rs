//! Model profiles: the calibratable parameters that make one simulated
//! LLM behave like GPT-3.5 and another like GPT-4.
//!
//! Every probability here is consumed through *stable seeded draws*
//! (`kgstore::hash`), so a given model either knows a given fact or it
//! does not, consistently across methods and runs — which is what makes
//! the paper's ablations (CoT vs pseudo-graph vs verification on the
//! same questions) meaningful.

use serde::{Deserialize, Serialize};

/// Behavioural parameters of a simulated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name ("gpt-3.5-sim").
    pub name: String,
    /// Seed of the parametric memory (what the model happens to know).
    pub seed: u64,
    /// Probability of recalling a single-hop, non-recent fact about the
    /// *most famous* entities when answering directly; tail entities
    /// scale down steeply with popularity (see
    /// [`crate::memory::ParametricMemory`]).
    pub fact_recall: f64,
    /// Steepness of the popularity→recall curve for single facts
    /// (recall scales with `popularity^pop_exponent`). Smaller models
    /// concentrate their knowledge on famous entities more sharply.
    pub pop_exponent: f64,
    /// Multiplier on per-hop recall when answering a multi-hop question
    /// in one shot (IO prompting underperforms on composition).
    pub hop_decay: f64,
    /// Multiplier on per-hop recall when reasoning step by step (CoT);
    /// also the floor for pseudo-graph "knowledge activation".
    pub cot_bonus: f64,
    /// Extra multiplier on recall when the model externalises knowledge
    /// as a pseudo-graph (the paper: generating pseudo-graphs
    /// "stimulates the model's factual capabilities" beyond CoT).
    pub activation_bonus: f64,
    /// When a fact is not recalled: probability the model confidently
    /// states a wrong entity instead of admitting ignorance.
    pub confusion_rate: f64,
    /// Per-member recall probability for list answers (open-ended
    /// questions enumerate sets; each member is its own draw).
    pub list_recall: f64,
    /// Recall for recent (post-cutoff) facts — near zero.
    pub recent_recall: f64,
    /// Pseudo-graph conservativeness in `[0, 1]`: the share of
    /// *uncertain* list knowledge the model withholds when asked to
    /// write it down as triples. Higher for GPT-4 — which is why its
    /// pseudo-graph-only Nature-Questions score *drops* (Table 5).
    pub pseudo_withhold: f64,
    /// Probability a supported edit is applied correctly during
    /// verification (replace wrong object, adopt KG evidence).
    pub verify_fidelity: f64,
    /// Probability the model keeps its own contradicted pseudo-triple
    /// anyway (self-bias; the paper's §6 limitation).
    pub verify_overtrust: f64,
    /// Probability of emitting a spurious `MATCH` when asked for
    /// `CREATE`-only Cypher (the paper measured 0.6% for GPT-3.5).
    pub cypher_match_rate: f64,
    /// Probability, per self-consistency sample, that temperature
    /// sampling flips a marginal recall the other way.
    pub sc_noise: f64,
    /// When provided context does not actually answer the question, the
    /// probability the model is *distracted* into answering with a
    /// salient context item instead of falling back to its own
    /// knowledge. Weaker models are hurt more by irrelevant context —
    /// this is why QSM underperforms even IO on multi-hop QALD-10 for
    /// GPT-3.5 but not for GPT-4 (paper Table 2).
    pub distraction_rate: f64,
}

impl ModelProfile {
    /// Calibrated GPT-3.5-like profile.
    pub fn gpt35_sim() -> Self {
        Self {
            name: "gpt-3.5-sim".into(),
            seed: 0x3535_3535,
            fact_recall: 1.0,
            pop_exponent: 0.55,
            hop_decay: 0.85,
            cot_bonus: 1.03,
            activation_bonus: 1.10,
            confusion_rate: 0.75,
            list_recall: 0.62,
            recent_recall: 0.04,
            pseudo_withhold: 0.05,
            verify_fidelity: 0.78,
            verify_overtrust: 0.15,
            cypher_match_rate: 0.006,
            sc_noise: 0.25,
            distraction_rate: 0.55,
        }
    }

    /// Calibrated GPT-4-like profile.
    pub fn gpt4_sim() -> Self {
        Self {
            name: "gpt-4-sim".into(),
            seed: 0x4444_4444,
            fact_recall: 0.95,
            pop_exponent: 0.40,
            hop_decay: 0.90,
            cot_bonus: 1.08,
            activation_bonus: 1.10,
            confusion_rate: 0.65,
            list_recall: 0.80,
            recent_recall: 0.05,
            pseudo_withhold: 0.42,
            verify_fidelity: 0.88,
            verify_overtrust: 0.15,
            cypher_match_rate: 0.001,
            sc_noise: 0.20,
            distraction_rate: 0.30,
        }
    }

    /// Validate that all probabilities are in range (used by tests and
    /// config loaders).
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("fact_recall", self.fact_recall),
            ("hop_decay", self.hop_decay),
            ("confusion_rate", self.confusion_rate),
            ("list_recall", self.list_recall),
            ("recent_recall", self.recent_recall),
            ("pseudo_withhold", self.pseudo_withhold),
            ("verify_fidelity", self.verify_fidelity),
            ("verify_overtrust", self.verify_overtrust),
            ("cypher_match_rate", self.cypher_match_rate),
            ("sc_noise", self.sc_noise),
            ("distraction_rate", self.distraction_rate),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} out of [0,1]: {p}"));
            }
        }
        for (name, m) in [
            ("cot_bonus", self.cot_bonus),
            ("activation_bonus", self.activation_bonus),
        ] {
            if !(1.0..=2.0).contains(&m) {
                return Err(format!("{name} out of [1,2]: {m}"));
            }
        }
        if !(0.1..=1.0).contains(&self.pop_exponent) {
            return Err(format!(
                "pop_exponent out of [0.1,1]: {}",
                self.pop_exponent
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_validate() {
        ModelProfile::gpt35_sim().validate().unwrap();
        ModelProfile::gpt4_sim().validate().unwrap();
    }

    #[test]
    fn gpt4_knows_more_and_withholds_more() {
        let g35 = ModelProfile::gpt35_sim();
        let g4 = ModelProfile::gpt4_sim();
        assert!(
            g4.pop_exponent < g35.pop_exponent,
            "gpt-4 has a flatter knowledge curve"
        );
        assert!(g4.list_recall > g35.list_recall);
        assert!(g4.pseudo_withhold > g35.pseudo_withhold);
        assert!(g4.cypher_match_rate < g35.cypher_match_rate);
        assert!(g4.distraction_rate < g35.distraction_rate);
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut p = ModelProfile::gpt35_sim();
        p.fact_recall = 1.5;
        assert!(p.validate().is_err());
        let mut p2 = ModelProfile::gpt35_sim();
        p2.cot_bonus = 0.5;
        assert!(p2.validate().is_err());
    }
}
