//! Transcript capture and replay.
//!
//! [`TranscriptLlm`] wraps any [`LanguageModel`] and records every
//! (prompt, completion) exchange — the audit trail a production
//! deployment keeps. [`ScriptedLlm`] replays a recorded transcript as a
//! model of its own, which lets pipeline tests pin exact LLM outputs
//! (and would let the pipeline be driven by completions captured from a
//! real API).

use crate::model::{Completion, LanguageModel, LlmError, LlmTask};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

impl LlmTask<'_> {
    /// Stable kind tag of the task (used in transcripts).
    pub fn kind(&self) -> &'static str {
        match self {
            LlmTask::Io { .. } => "io",
            LlmTask::Cot { .. } => "cot",
            LlmTask::CotSample { .. } => "cot-sample",
            LlmTask::PseudoGraph { .. } => "pseudo-graph",
            LlmTask::VerifyGraph { .. } => "verify",
            LlmTask::VerifyGraphSample { .. } => "verify-sample",
            LlmTask::AnswerFromGraph { .. } => "answer",
        }
    }
}

/// One recorded exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exchange {
    /// Task kind tag.
    pub kind: String,
    /// The rendered prompt.
    pub prompt: String,
    /// The model's completion.
    pub completion: String,
}

/// A recording wrapper around any model.
pub struct TranscriptLlm<M> {
    inner: M,
    log: Mutex<Vec<Exchange>>,
}

impl<M: LanguageModel> TranscriptLlm<M> {
    /// Wrap a model.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot the transcript so far.
    pub fn transcript(&self) -> Vec<Exchange> {
        self.log.lock().clone()
    }

    /// Number of recorded exchanges.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: LanguageModel> LanguageModel for TranscriptLlm<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Result<Completion, LlmError> {
        // Only served completions enter the transcript: the audit trail
        // records what the model said, and transport faults are the
        // resilience layer's telemetry, not the model's.
        let completion = self.inner.complete(prompt, task)?;
        self.log.lock().push(Exchange {
            kind: task.kind().to_string(),
            prompt: prompt.to_string(),
            completion: completion.text.clone(),
        });
        Ok(completion)
    }

    fn call_count(&self) -> usize {
        self.inner.call_count()
    }

    fn tokens_processed(&self) -> usize {
        self.inner.tokens_processed()
    }
}

/// A model that replays a fixed sequence of completions, in order.
/// When the script runs out it returns empty completions (and counts
/// the overrun, so tests can assert exhaustion).
pub struct ScriptedLlm {
    name: String,
    script: Mutex<VecDeque<String>>,
    calls: AtomicUsize,
    overruns: AtomicUsize,
}

impl ScriptedLlm {
    /// Create from completion texts in playback order.
    pub fn new(completions: impl IntoIterator<Item = String>) -> Self {
        Self {
            name: "scripted".to_string(),
            script: Mutex::new(completions.into_iter().collect()),
            calls: AtomicUsize::new(0),
            overruns: AtomicUsize::new(0),
        }
    }

    /// Create from a recorded transcript.
    pub fn from_transcript(transcript: &[Exchange]) -> Self {
        Self::new(transcript.iter().map(|e| e.completion.clone()))
    }

    /// Completions requested past the end of the script.
    pub fn overruns(&self) -> usize {
        self.overruns.load(Ordering::Relaxed)
    }

    /// Completions still queued.
    pub fn remaining(&self) -> usize {
        self.script.lock().len()
    }
}

impl LanguageModel for ScriptedLlm {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&self, _prompt: &str, _task: &LlmTask<'_>) -> Result<Completion, LlmError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        match self.script.lock().pop_front() {
            Some(text) => Ok(Completion { text }),
            None => {
                self.overruns.fetch_add(1, Ordering::Relaxed);
                Ok(Completion {
                    text: String::new(),
                })
            }
        }
    }

    fn call_count(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    fn tokens_processed(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelProfile, SimLlm};
    use std::sync::Arc;
    use worldgen::{datasets::simpleq, generate, WorldConfig};

    #[test]
    fn transcript_records_every_exchange() {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let llm = TranscriptLlm::new(SimLlm::new(world.clone(), ModelProfile::gpt35_sim()));
        let ds = simpleq::generate(&world, 3, 1);
        for q in &ds.questions {
            let p = crate::prompt::io_prompt(&q.text);
            llm.complete(&p, &LlmTask::Io { question: q }).unwrap();
        }
        let t = llm.transcript();
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|e| e.kind == "io"));
        assert!(t.iter().all(|e| e.prompt.contains("Answer the question")));
        assert!(t.iter().all(|e| !e.completion.is_empty()));
    }

    #[test]
    fn scripted_replays_a_transcript_exactly() {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let real = TranscriptLlm::new(SimLlm::new(world.clone(), ModelProfile::gpt35_sim()));
        let ds = simpleq::generate(&world, 4, 2);
        let originals: Vec<String> = ds
            .questions
            .iter()
            .map(|q| {
                real.complete("p", &LlmTask::Cot { question: q })
                    .unwrap()
                    .text
            })
            .collect();

        let replay = ScriptedLlm::from_transcript(&real.transcript());
        for (q, orig) in ds.questions.iter().zip(&originals) {
            let got = replay
                .complete("p", &LlmTask::Cot { question: q })
                .unwrap()
                .text;
            assert_eq!(&got, orig);
        }
        assert_eq!(replay.remaining(), 0);
        assert_eq!(replay.overruns(), 0);
    }

    #[test]
    fn scripted_overrun_is_counted() {
        let llm = ScriptedLlm::new(vec!["only one".to_string()]);
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let ds = simpleq::generate(&world, 1, 3);
        let q = &ds.questions[0];
        assert_eq!(
            llm.complete("p", &LlmTask::Io { question: q })
                .unwrap()
                .text,
            "only one"
        );
        assert_eq!(
            llm.complete("p", &LlmTask::Io { question: q })
                .unwrap()
                .text,
            ""
        );
        assert_eq!(llm.overruns(), 1);
        assert_eq!(llm.call_count(), 2);
    }

    #[test]
    fn task_kinds_are_stable() {
        let world = Arc::new(generate(&WorldConfig {
            scale: 0.3,
            ..Default::default()
        }));
        let ds = simpleq::generate(&world, 1, 4);
        let q = &ds.questions[0];
        assert_eq!(LlmTask::Io { question: q }.kind(), "io");
        assert_eq!(LlmTask::PseudoGraph { question: q }.kind(), "pseudo-graph");
    }

    #[test]
    fn exchanges_serialize() {
        let e = Exchange {
            kind: "io".into(),
            prompt: "p".into(),
            completion: "c".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Exchange = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
