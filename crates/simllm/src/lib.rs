//! # simllm — a deterministic simulated large language model
//!
//! Offline stand-in for GPT-3.5 / GPT-4 with exactly the properties the
//! paper's pipeline exercises: a *parametric memory* (what the model
//! happens to know — a per-model stochastically corrupted view of the
//! world, stable under seeded hashing), prompting-mode effects
//! (IO < CoT ≤ pseudo-graph activation), hallucination (confident wrong
//! answers substituting popular look-alikes), list-knowledge partiality,
//! recency blindness, pseudo-graph conservativeness, verification edit
//! fidelity with self-bias, and the spurious-`MATCH` Cypher failure.
//!
//! * [`profile`] — the calibratable per-model parameters;
//! * [`memory`] — stable seeded fact recall / confabulation;
//! * [`prompt`] — the paper's Figure 3–5 prompt templates;
//! * [`model`] — the [`LanguageModel`] trait, the [`LlmError`]
//!   transport-fault taxonomy, + [`SimLlm`];
//! * [`faults`] — the seeded [`FaultyLlm`] fault-injection decorator;
//! * [`behavior`] — task implementations (IO/CoT/SC, pseudo-graph
//!   Cypher, graph verification, graph-grounded answering);
//! * [`graphs`] — the ground-graph types exchanged with the pipeline.

#![warn(missing_docs)]

pub mod behavior;
pub mod faults;
pub mod graphs;
pub mod memory;
pub mod model;
pub mod profile;
pub mod prompt;
pub mod transcript;

pub use behavior::verify::{parse_triple_lines, verify_graph_consistent};
pub use faults::{FaultPlan, FaultRates, FaultyLlm, Storm};
pub use graphs::{GroundEntity, GroundGraph};
pub use memory::{ParametricMemory, Recall, RecallMode};
pub use model::{Completion, LanguageModel, LlmError, LlmTask, SimLlm};
pub use profile::ModelProfile;
pub use transcript::{Exchange, ScriptedLlm, TranscriptLlm};
