//! The [`LanguageModel`] trait and the simulated implementation.
//!
//! ## Honesty contract
//!
//! Every call site renders a real prompt string (see [`crate::prompt`])
//! and passes it together with the structured [`LlmTask`]. The simulated
//! model keys its behaviour on the task — the structured counterpart of
//! what a real LLM would parse back out of the prompt — and resolves all
//! *facts* through its corrupted [`crate::memory`], never through gold
//! answers. Prompts are consumed for token accounting and transcripts.

use crate::behavior;
use crate::graphs::GroundGraph;
use crate::memory::ParametricMemory;
use crate::profile::ModelProfile;
use kgstore::StrTriple;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use worldgen::{Question, World};

/// What the model is being asked to do (structured form of the prompt).
#[derive(Debug, Clone)]
pub enum LlmTask<'a> {
    /// Direct 6-shot answering.
    Io {
        /// The question being answered.
        question: &'a Question,
    },
    /// 6-shot chain-of-thought answering.
    Cot {
        /// The question being answered.
        question: &'a Question,
    },
    /// One temperature-0.7 sample for self-consistency.
    CotSample {
        /// The question being answered.
        question: &'a Question,
        /// Sample index (0, 1, 2 …).
        index: u32,
    },
    /// Figure-3: emit Cypher constructing the pseudo-graph.
    PseudoGraph {
        /// The question being answered.
        question: &'a Question,
    },
    /// Figure-4: fix the pseudo-graph against ground-graph evidence.
    VerifyGraph {
        /// The question being answered.
        question: &'a Question,
        /// Decoded pseudo-graph triples.
        pseudo: &'a [StrTriple],
        /// Retrieved-and-pruned ground graph.
        ground: &'a GroundGraph,
    },
    /// One temperature sample of Figure-4 verification (for the
    /// majority-voted verification extension).
    VerifyGraphSample {
        /// The question being answered.
        question: &'a Question,
        /// Decoded pseudo-graph triples.
        pseudo: &'a [StrTriple],
        /// Retrieved-and-pruned ground graph.
        ground: &'a GroundGraph,
        /// Sample index (0 = greedy).
        index: u32,
    },
    /// Figure-5: answer from the fixed graph.
    AnswerFromGraph {
        /// The question being answered.
        question: &'a Question,
        /// The verified graph `G_f`.
        graph: &'a [StrTriple],
    },
}

/// A model completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The raw output text.
    pub text: String,
}

/// The LLM abstraction the pipeline is written against. A production
/// deployment would implement this over an HTTP API; the reproduction
/// implements it with [`SimLlm`].
pub trait LanguageModel: Send + Sync {
    /// Model display name.
    fn name(&self) -> &str;
    /// Run one completion.
    fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Completion;
    /// Number of completions served (telemetry).
    fn call_count(&self) -> usize;
    /// Approximate tokens processed, prompt + completion (telemetry).
    fn tokens_processed(&self) -> usize;
}

/// The deterministic simulated LLM.
pub struct SimLlm {
    world: Arc<World>,
    profile: ModelProfile,
    calls: AtomicUsize,
    tokens: AtomicUsize,
}

impl SimLlm {
    /// Bind a profile to a world.
    pub fn new(world: Arc<World>, profile: ModelProfile) -> Self {
        profile.validate().expect("valid profile");
        Self {
            world,
            profile,
            calls: AtomicUsize::new(0),
            tokens: AtomicUsize::new(0),
        }
    }

    /// The model's memory view (cheap to construct).
    pub fn memory(&self) -> ParametricMemory<'_> {
        ParametricMemory::new(&self.world, self.profile.clone())
    }

    /// The profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn account(&self, prompt: &str, output: &str) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        // ~4 chars/token heuristic.
        self.tokens
            .fetch_add((prompt.len() + output.len()) / 4, Ordering::Relaxed);
    }
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Completion {
        let mem = self.memory();
        let text = match task {
            LlmTask::Io { question } => behavior::answering::io_answer(&mem, question),
            LlmTask::Cot { question } => behavior::answering::cot_answer(&mem, question),
            LlmTask::CotSample { question, index } => {
                behavior::answering::sampled_answer(&mem, question, *index)
            }
            LlmTask::PseudoGraph { question } => behavior::pseudo::pseudo_cypher(&mem, question),
            LlmTask::VerifyGraph {
                question,
                pseudo,
                ground,
            } => behavior::verify::render_fixed(&behavior::verify::verify_graph(
                &mem, question, pseudo, ground,
            )),
            LlmTask::VerifyGraphSample {
                question,
                pseudo,
                ground,
                index,
            } => behavior::verify::render_fixed(&behavior::verify::verify_graph_sampled(
                &mem, question, pseudo, ground, *index,
            )),
            LlmTask::AnswerFromGraph { question, graph } => {
                behavior::graph_answer::answer_from_graph(&mem, question, graph)
            }
        };
        self.account(prompt, &text);
        Completion { text }
    }

    fn call_count(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    fn tokens_processed(&self) -> usize {
        self.tokens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{datasets::simpleq, generate, WorldConfig};

    fn setup() -> (Arc<World>, SimLlm) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        (world, llm)
    }

    #[test]
    fn telemetry_counts_calls_and_tokens() {
        let (world, llm) = setup();
        let ds = simpleq::generate(&world, 3, 1);
        for q in &ds.questions {
            let prompt = crate::prompt::io_prompt(&q.text);
            llm.complete(&prompt, &LlmTask::Io { question: q });
        }
        assert_eq!(llm.call_count(), 3);
        assert!(llm.tokens_processed() > 100);
    }

    #[test]
    fn completions_are_deterministic() {
        let (world, llm) = setup();
        let ds = simpleq::generate(&world, 5, 2);
        for q in &ds.questions {
            let a = llm.complete("p", &LlmTask::Cot { question: q });
            let b = llm.complete("p", &LlmTask::Cot { question: q });
            assert_eq!(a, b);
        }
    }

    #[test]
    fn name_comes_from_profile() {
        let (_, llm) = setup();
        assert_eq!(llm.name(), "gpt-3.5-sim");
    }
}
