//! The [`LanguageModel`] trait and the simulated implementation.
//!
//! ## Honesty contract
//!
//! Every call site renders a real prompt string (see [`crate::prompt`])
//! and passes it together with the structured [`LlmTask`]. The simulated
//! model keys its behaviour on the task — the structured counterpart of
//! what a real LLM would parse back out of the prompt — and resolves all
//! *facts* through its corrupted [`crate::memory`], never through gold
//! answers. Prompts are consumed for token accounting and transcripts.

use crate::behavior;
use crate::graphs::GroundGraph;
use crate::memory::ParametricMemory;
use crate::profile::ModelProfile;
use kgstore::StrTriple;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use worldgen::{Question, World};

/// What the model is being asked to do (structured form of the prompt).
#[derive(Debug, Clone)]
pub enum LlmTask<'a> {
    /// Direct 6-shot answering.
    Io {
        /// The question being answered.
        question: &'a Question,
    },
    /// 6-shot chain-of-thought answering.
    Cot {
        /// The question being answered.
        question: &'a Question,
    },
    /// One temperature-0.7 sample for self-consistency.
    CotSample {
        /// The question being answered.
        question: &'a Question,
        /// Sample index (0, 1, 2 …).
        index: u32,
    },
    /// Figure-3: emit Cypher constructing the pseudo-graph.
    PseudoGraph {
        /// The question being answered.
        question: &'a Question,
    },
    /// Figure-4: fix the pseudo-graph against ground-graph evidence.
    VerifyGraph {
        /// The question being answered.
        question: &'a Question,
        /// Decoded pseudo-graph triples.
        pseudo: &'a [StrTriple],
        /// Retrieved-and-pruned ground graph.
        ground: &'a GroundGraph,
    },
    /// One temperature sample of Figure-4 verification (for the
    /// majority-voted verification extension).
    VerifyGraphSample {
        /// The question being answered.
        question: &'a Question,
        /// Decoded pseudo-graph triples.
        pseudo: &'a [StrTriple],
        /// Retrieved-and-pruned ground graph.
        ground: &'a GroundGraph,
        /// Sample index (0 = greedy).
        index: u32,
    },
    /// Figure-5: answer from the fixed graph.
    AnswerFromGraph {
        /// The question being answered.
        question: &'a Question,
        /// The verified graph `G_f`.
        graph: &'a [StrTriple],
    },
}

impl LlmTask<'_> {
    /// The question this task is about (every task carries one).
    pub fn question(&self) -> &Question {
        match self {
            LlmTask::Io { question }
            | LlmTask::Cot { question }
            | LlmTask::CotSample { question, .. }
            | LlmTask::PseudoGraph { question }
            | LlmTask::VerifyGraph { question, .. }
            | LlmTask::VerifyGraphSample { question, .. }
            | LlmTask::AnswerFromGraph { question, .. } => question,
        }
    }

    /// Temperature-sample index of the task (0 for unsampled tasks).
    pub fn sample_index(&self) -> u32 {
        match self {
            LlmTask::CotSample { index, .. } | LlmTask::VerifyGraphSample { index, .. } => *index,
            _ => 0,
        }
    }
}

/// A model completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The raw output text.
    pub text: String,
}

/// Transport-level failure of one completion call, classified by what a
/// caller can do about it. Retryable errors ([`LlmError::Timeout`],
/// [`LlmError::RateLimited`], [`LlmError::Transient`],
/// [`LlmError::Empty`]) may succeed on a fresh attempt; truncation is
/// deterministic for a fixed request at temperature 0, so retrying
/// wastes budget — callers should salvage the partial text instead.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The call exceeded its deadline; no text was produced.
    Timeout,
    /// The provider shed load; it suggests waiting `retry_after_ms`.
    RateLimited {
        /// Provider-suggested wait before the next attempt.
        retry_after_ms: u64,
    },
    /// A transient transport or server failure (5xx, dropped socket).
    Transient,
    /// The completion was cut off mid-output; the partial text is kept.
    Truncated {
        /// Whatever text arrived before the cutoff.
        text: String,
    },
    /// The provider returned an empty completion body.
    Empty,
}

impl LlmError {
    /// Stable slug of the fault kind (telemetry / trace keys).
    pub fn kind(&self) -> &'static str {
        match self {
            LlmError::Timeout => "timeout",
            LlmError::RateLimited { .. } => "rate-limited",
            LlmError::Transient => "transient",
            LlmError::Truncated { .. } => "truncated",
            LlmError::Empty => "empty",
        }
    }

    /// Whether a fresh attempt at the same request can succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, LlmError::Truncated { .. })
    }

    /// The salvageable partial text, if the error carries one.
    pub fn partial_text(&self) -> Option<&str> {
        match self {
            LlmError::Truncated { text } => Some(text),
            _ => None,
        }
    }
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::Timeout => write!(f, "completion timed out"),
            LlmError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms} ms)")
            }
            LlmError::Transient => write!(f, "transient transport failure"),
            LlmError::Truncated { text } => {
                write!(f, "completion truncated after {} bytes", text.len())
            }
            LlmError::Empty => write!(f, "empty completion"),
        }
    }
}

impl std::error::Error for LlmError {}

/// The LLM abstraction the pipeline is written against. A production
/// deployment would implement this over an HTTP API — which times out,
/// gets rate-limited, and truncates — so completion is fallible; the
/// reproduction implements it with [`SimLlm`] (infallible) and the
/// [`crate::faults::FaultyLlm`] decorator (injects [`LlmError`]s on a
/// deterministic schedule).
pub trait LanguageModel: Send + Sync {
    /// Model display name.
    fn name(&self) -> &str;
    /// Run one completion.
    fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Result<Completion, LlmError>;
    /// Number of completions served (telemetry).
    fn call_count(&self) -> usize;
    /// Approximate tokens processed, prompt + completion (telemetry).
    fn tokens_processed(&self) -> usize;
}

/// The deterministic simulated LLM.
pub struct SimLlm {
    world: Arc<World>,
    profile: ModelProfile,
    calls: AtomicUsize,
    tokens: AtomicUsize,
}

impl SimLlm {
    /// Bind a profile to a world.
    pub fn new(world: Arc<World>, profile: ModelProfile) -> Self {
        profile.validate().expect("valid profile");
        Self {
            world,
            profile,
            calls: AtomicUsize::new(0),
            tokens: AtomicUsize::new(0),
        }
    }

    /// The model's memory view (cheap to construct).
    pub fn memory(&self) -> ParametricMemory<'_> {
        ParametricMemory::new(&self.world, self.profile.clone())
    }

    /// The profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn account(&self, prompt: &str, output: &str) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        // ~4 chars/token heuristic.
        self.tokens
            .fetch_add((prompt.len() + output.len()) / 4, Ordering::Relaxed);
    }
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn complete(&self, prompt: &str, task: &LlmTask<'_>) -> Result<Completion, LlmError> {
        let mem = self.memory();
        let text = match task {
            LlmTask::Io { question } => behavior::answering::io_answer(&mem, question),
            LlmTask::Cot { question } => behavior::answering::cot_answer(&mem, question),
            LlmTask::CotSample { question, index } => {
                behavior::answering::sampled_answer(&mem, question, *index)
            }
            LlmTask::PseudoGraph { question } => behavior::pseudo::pseudo_cypher(&mem, question),
            LlmTask::VerifyGraph {
                question,
                pseudo,
                ground,
            } => behavior::verify::render_fixed(&behavior::verify::verify_graph(
                &mem, question, pseudo, ground,
            )),
            LlmTask::VerifyGraphSample {
                question,
                pseudo,
                ground,
                index,
            } => behavior::verify::render_fixed(&behavior::verify::verify_graph_sampled(
                &mem, question, pseudo, ground, *index,
            )),
            LlmTask::AnswerFromGraph { question, graph } => {
                behavior::graph_answer::answer_from_graph(&mem, question, graph)
            }
        };
        self.account(prompt, &text);
        Ok(Completion { text })
    }

    fn call_count(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    fn tokens_processed(&self) -> usize {
        self.tokens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{datasets::simpleq, generate, WorldConfig};

    fn setup() -> (Arc<World>, SimLlm) {
        let world = Arc::new(generate(&WorldConfig::default()));
        let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
        (world, llm)
    }

    #[test]
    fn telemetry_counts_calls_and_tokens() {
        let (world, llm) = setup();
        let ds = simpleq::generate(&world, 3, 1);
        for q in &ds.questions {
            let prompt = crate::prompt::io_prompt(&q.text);
            llm.complete(&prompt, &LlmTask::Io { question: q }).unwrap();
        }
        assert_eq!(llm.call_count(), 3);
        assert!(llm.tokens_processed() > 100);
    }

    #[test]
    fn completions_are_deterministic() {
        let (world, llm) = setup();
        let ds = simpleq::generate(&world, 5, 2);
        for q in &ds.questions {
            let a = llm.complete("p", &LlmTask::Cot { question: q }).unwrap();
            let b = llm.complete("p", &LlmTask::Cot { question: q }).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn name_comes_from_profile() {
        let (_, llm) = setup();
        assert_eq!(llm.name(), "gpt-3.5-sim");
    }

    #[test]
    fn error_taxonomy_is_retryability_classified() {
        assert!(LlmError::Timeout.is_retryable());
        assert!(LlmError::RateLimited { retry_after_ms: 50 }.is_retryable());
        assert!(LlmError::Transient.is_retryable());
        assert!(LlmError::Empty.is_retryable());
        let trunc = LlmError::Truncated { text: "par".into() };
        assert!(!trunc.is_retryable(), "truncation is deterministic");
        assert_eq!(trunc.partial_text(), Some("par"));
        assert_eq!(trunc.kind(), "truncated");
        assert!(LlmError::Timeout.partial_text().is_none());
    }

    #[test]
    fn task_accessors_cover_every_variant() {
        let (world, _) = setup();
        let ds = simpleq::generate(&world, 1, 9);
        let q = &ds.questions[0];
        assert_eq!(LlmTask::Io { question: q }.question().id, q.id);
        assert_eq!(LlmTask::Io { question: q }.sample_index(), 0);
        assert_eq!(
            LlmTask::CotSample {
                question: q,
                index: 2
            }
            .sample_index(),
            2
        );
    }
}
