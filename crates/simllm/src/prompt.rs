//! Prompt templates mirroring the paper's Figures 3–5 (pseudo-graph
//! generation, pseudo-graph verification, answer generation) plus the
//! 6-shot IO / CoT baselines.
//!
//! The simulated model keys its behaviour on the structured task, not on
//! re-parsing these strings; the templates exist so that the system's
//! call sites, token accounting, and logged transcripts look exactly
//! like the real pipeline's.

use kgstore::StrTriple;
use semvec::display_triple;

/// The paper's Figure 3 in-context examples (abridged to their
/// operative lines).
pub const PSEUDO_GRAPH_EXAMPLES: &str = r#"[Example 1]:
{Question}: Who has the largest area of the Great Lakes in the United States?

<step 1> {Knowledge Planning}:
To answer the question of who has the largest area of the Great Lakes in the United States,
we need to gather information about the Great Lakes, their individual areas, and the states they are located in.

<step 2> {Knowledge Graph}:
// Create Great Lakes nodes
CREATE (superior:Lake {name: 'Lake Superior', area: 82000})
CREATE (michigan:Lake {name: 'Lake Michigan', area: 58000})
CREATE (huron:Lake {name: 'Lake Huron', area: 23000})
CREATE (ontario:Lake {name: 'Lake Ontario', area: 19000})
CREATE (erie:Lake {name: 'Lake Erie', area: 9600})

[Example 2]:
{Question}: Who covers more countries, the Andes or the Himalayas?

<step 1> {Knowledge Planning}:
I need to gather information about the Andes and the Himalayas, as well as the countries they span.

<step 2> {Knowledge Graph}:
// Create Andes node
CREATE (andes:MountainRange {name: "Andes"})
// Create Himalayas node
CREATE (himalayas:MountainRange {name: "Himalayas"})
CREATE (andes)-[:COVERS]->(ecuador:Country {name: "Ecuador"})
CREATE (andes)-[:COVERS]->(colombia:Country {name: "Colombia"})
CREATE (himalayas)-[:COVERS]->(india:Country {name: "India"})
CREATE (himalayas)-[:COVERS]->(nepal:Country {name: "Nepal"})
"#;

/// Build the Figure-3 pseudo-graph generation prompt.
pub fn pseudo_graph_prompt(question: &str) -> String {
    format!(
        "[Task description]:\n\
         You should answer the {{Question}} in the following steps:\n\
         <step 1> Find out what {{Knowledge Planning}} do you need to solve the {{Question}}\n\
         <step 2> Strictly fill the {{Knowledge Planning}} to construct the {{Knowledge Graph}} \
         as complete as possible with {{Cypher}}\n\n\
         {PSEUDO_GRAPH_EXAMPLES}\n\
         [Task]:\n{{Question}}: {question}\n"
    )
}

/// Build the Figure-4 verification prompt: fix `graph to fix` (the
/// pseudo-graph) against `ground graph` evidence.
pub fn verify_prompt(
    question: &str,
    pseudo: &[StrTriple],
    ground_sections: &[(String, Vec<StrTriple>)],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(
        "Please fix the {graph to fix} below, deleting redundant content from \
         {graph to fix} and adding missing content from {ground graph} to help me \
         solve the [problem], following the format in [Example]:\n\n",
    );
    out.push_str(
        "[Example]:\n{ground graph}:\n[entity_0]:\n<Stevie Wonder> <occupation> <singer>\n\
                  {graph to fix}:\n<Stevie Wonder> <HAS_OCCUPATION> <actor>\n\
                  {fixed graph}:\n<Stevie Wonder> <occupation> <singer>\n\n",
    );
    out.push_str("[problem]: ");
    out.push_str(question);
    out.push_str("\n\n{ground graph}:\n");
    for (i, (label, triples)) in ground_sections.iter().enumerate() {
        out.push_str(&format!("[entity_{i}]: {label}\n"));
        for t in triples {
            out.push_str(&display_triple(t));
            out.push('\n');
        }
    }
    out.push_str("\n{graph to fix}:\n");
    for t in pseudo {
        out.push_str(&display_triple(t));
        out.push('\n');
    }
    out.push_str("\n{fixed graph}:\n");
    out
}

/// Build the Figure-5 answer-generation prompt.
pub fn answer_prompt(question: &str, graph: &[StrTriple]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(
        "Please answer the [question] based on the [graph] provided, following the \
         format in [Example]:\n\n\
         [Example]:\n[graph]:\n<Andes> <covers> <Peru>\n<Andes> <covers> <Chile>\n\
         [question]: Which countries does the Andes cover?\n\
         [answer]: Based on the graph above, the Andes covers Peru and Chile.\n\n",
    );
    out.push_str("[graph]:\n");
    for t in graph {
        out.push_str(&display_triple(t));
        out.push('\n');
    }
    out.push_str("[question]: ");
    out.push_str(question);
    out.push_str("\n[answer]: ");
    out
}

/// 6-shot IO prompt (paper baseline).
pub fn io_prompt(question: &str) -> String {
    format!(
        "Answer the question directly.\n\n\
         Q: What is the capital of France? A: Paris.\n\
         Q: Who wrote Hamlet? A: William Shakespeare.\n\
         Q: Where was Albert Einstein born? A: Ulm.\n\
         Q: Which company developed the iPhone? A: Apple.\n\
         Q: What genre is The Godfather? A: Crime drama.\n\
         Q: Who directed Jaws? A: Steven Spielberg.\n\n\
         Q: {question} A:"
    )
}

/// 6-shot CoT prompt (paper baseline).
pub fn cot_prompt(question: &str) -> String {
    format!(
        "Answer the question, thinking step by step.\n\n\
         Q: Where was the director of Jaws born?\n\
         A: The director of Jaws is Steven Spielberg. Steven Spielberg was born in \
         Cincinnati. So the answer is Cincinnati.\n\
         Q: What is the capital of the country where the Rhine ends?\n\
         A: The Rhine ends in the Netherlands. The capital of the Netherlands is \
         Amsterdam. So the answer is Amsterdam.\n\
         (4 more worked examples omitted for brevity)\n\n\
         Q: {question}\nA:"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_prompt_embeds_question_and_examples() {
        let p = pseudo_graph_prompt("What kind of chips does the Apple Vision Pro use?");
        assert!(p.contains("Apple Vision Pro"));
        assert!(p.contains("CREATE (superior:Lake"));
        assert!(p.contains("[Task]"));
    }

    #[test]
    fn verify_prompt_sections() {
        let pseudo = vec![StrTriple::new("A", "R", "B")];
        let ground = vec![("Ent".to_string(), vec![StrTriple::new("A", "r2", "C")])];
        let p = verify_prompt("q?", &pseudo, &ground);
        assert!(p.contains("[entity_0]: Ent"));
        assert!(p.contains("<A> <r> <B>")); // predicate humanised for display
        assert!(p.contains("<A> <r2> <C>"));
        assert!(p.contains("{fixed graph}"));
    }

    #[test]
    fn answer_prompt_lists_graph() {
        let g = vec![StrTriple::new("X", "covers", "Y")];
        let p = answer_prompt("Which?", &g);
        assert!(p.contains("<X> <covers> <Y>"));
        assert!(p.ends_with("[answer]: "));
    }

    #[test]
    fn baseline_prompts_have_six_shots() {
        let io = io_prompt("test?");
        assert_eq!(io.matches("Q:").count(), 7); // 6 examples + task
        assert!(cot_prompt("test?").contains("step by step"));
    }
}
