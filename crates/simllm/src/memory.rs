//! Parametric memory: the simulated model's (imperfect) knowledge of
//! the world.
//!
//! Every query is resolved through stable seeded draws keyed on
//! `(model seed, fact key, channel)`, so the same model gives the same
//! belief for the same fact every time it is asked the same way —
//! hallucinations included. A *mode multiplier* models how prompting
//! style changes effective recall (IO < CoT ≤ pseudo-graph activation),
//! with marginal facts flipping from unknown to known as the multiplier
//! rises, never the reverse.

use crate::profile::ModelProfile;
use kgstore::hash::{mix2, unit_f64};
use worldgen::{EntityId, RelId, World};

/// How the model is being prompted when it consults memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecallMode {
    /// Direct input-output answering.
    OneShot,
    /// Chain-of-thought: step-by-step per-hop reasoning.
    StepByStep,
    /// Pseudo-graph generation ("knowledge activation").
    PseudoGraph,
}

/// The outcome of trying to recall one fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recall {
    /// The model knows the true object.
    Known(EntityId),
    /// The model confidently believes a wrong object.
    Confused(EntityId),
    /// The model has no belief.
    Unknown,
}

impl Recall {
    /// The believed entity, if any.
    pub fn believed(self) -> Option<EntityId> {
        match self {
            Recall::Known(e) | Recall::Confused(e) => Some(e),
            Recall::Unknown => None,
        }
    }

    /// Whether the belief is correct.
    pub fn is_correct(self) -> bool {
        matches!(self, Recall::Known(_))
    }
}

/// The memory itself: world reference + model profile.
#[derive(Debug, Clone)]
pub struct ParametricMemory<'w> {
    world: &'w World,
    profile: ModelProfile,
}

impl<'w> ParametricMemory<'w> {
    /// Bind a profile to a world.
    pub fn new(world: &'w World, profile: ModelProfile) -> Self {
        Self { world, profile }
    }

    /// The underlying world (read-only; used by behaviours for labels
    /// and kinds, never for gold answers directly).
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// The profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn mode_multiplier(&self, mode: RecallMode) -> f64 {
        match mode {
            RecallMode::OneShot => 1.0,
            RecallMode::StepByStep => self.profile.cot_bonus,
            RecallMode::PseudoGraph => self.profile.cot_bonus * self.profile.activation_bonus,
        }
    }

    /// Flat popularity exponent for *list membership* recall: lists are
    /// recalled member-by-member and the long tail of members is what
    /// differs, not the subject's fame.
    const LIST_POP_EXPONENT: f64 = 0.35;

    /// Effective recall probability of the fact `(s, rel)` → object.
    /// Popular entities are vastly better represented in training
    /// corpora: recall of head-entity facts is several times that of
    /// tail-entity facts (the steep curve is what makes QALD-style
    /// questions about famous entities much easier than uniformly
    /// sampled SimpleQuestions facts).
    fn recall_prob_exp(
        &self,
        s: EntityId,
        rel: RelId,
        base: f64,
        mode: RecallMode,
        exponent: f64,
    ) -> f64 {
        let spec = rel.spec();
        let pop = self.world.entity(s).popularity;
        let pop_factor = pop.powf(exponent).clamp(0.05, 1.0);
        let base = if spec.recent {
            self.profile.recent_recall
        } else {
            base * pop_factor
        };
        (base * self.mode_multiplier(mode)).min(0.98)
    }

    fn recall_prob(&self, s: EntityId, rel: RelId, base: f64, mode: RecallMode) -> f64 {
        self.recall_prob_exp(s, rel, base, mode, self.profile.pop_exponent)
    }

    /// Stable per-(model, key, channel) uniform draw.
    fn draw(&self, key: u64, channel: u64) -> f64 {
        unit_f64(mix2(mix2(self.profile.seed, key), channel))
    }

    fn fact_key(s: EntityId, rel: RelId, o: Option<EntityId>) -> u64 {
        let base = mix2(s.0 as u64, 0x1000 + rel.0 as u64);
        match o {
            Some(o) => mix2(base, 0x2000 + o.0 as u64),
            None => base,
        }
    }

    /// Try to recall the (unique) object of a functional fact.
    ///
    /// Marginal-fact monotonicity: a higher mode multiplier can only turn
    /// `Unknown`/`Confused` into `Known`, never the reverse, because the
    /// underlying uniform draw is shared across modes.
    pub fn recall_object(&self, s: EntityId, rel: RelId, mode: RecallMode) -> Recall {
        let truth = self.world.objects_of(s, rel);
        let Some(&true_o) = truth.first() else {
            // The world has no such fact; the model may still confabulate.
            return self.maybe_confabulate(s, rel, None);
        };
        let key = Self::fact_key(s, rel, None);
        let p = self.recall_prob(s, rel, self.profile.fact_recall, mode);
        if self.draw(key, 0) < p {
            Recall::Known(true_o)
        } else {
            self.maybe_confabulate(s, rel, Some(true_o))
        }
    }

    /// Self-consistency variant: sample `index` perturbs marginal draws
    /// with probability `sc_noise` (temperature sampling).
    pub fn recall_object_sampled(
        &self,
        s: EntityId,
        rel: RelId,
        mode: RecallMode,
        index: u32,
    ) -> Recall {
        let key = Self::fact_key(s, rel, None);
        if self.draw(key, 0x5C00 + index as u64) < self.profile.sc_noise {
            // Redraw this fact independently for this sample.
            let truth = self.world.objects_of(s, rel);
            let Some(&true_o) = truth.first() else {
                return self.maybe_confabulate(s, rel, None);
            };
            let p = self.recall_prob(s, rel, self.profile.fact_recall, mode);
            if self.draw(key, 0x5D00 + index as u64) < p {
                return Recall::Known(true_o);
            }
            return self.maybe_confabulate_ch(s, rel, Some(true_o), 0x5E00 + index as u64);
        }
        self.recall_object(s, rel, mode)
    }

    fn maybe_confabulate(&self, s: EntityId, rel: RelId, true_o: Option<EntityId>) -> Recall {
        self.maybe_confabulate_ch(s, rel, true_o, 1)
    }

    fn maybe_confabulate_ch(
        &self,
        s: EntityId,
        rel: RelId,
        true_o: Option<EntityId>,
        channel: u64,
    ) -> Recall {
        let key = Self::fact_key(s, rel, None);
        if self.draw(key, channel) >= self.profile.confusion_rate {
            return Recall::Unknown;
        }
        match self.plausible_wrong_object(s, rel, true_o, channel) {
            Some(wrong) => Recall::Confused(wrong),
            None => Recall::Unknown,
        }
    }

    /// A confidently-wrong object: a *popular* entity of the right kind
    /// (LLM hallucinations substitute famous look-alikes, like answering
    /// `Q1826` for the Yellow River). Never returns an actually-true
    /// object — correct recall is modelled by the recall draws, not by
    /// lucky guesses.
    fn plausible_wrong_object(
        &self,
        s: EntityId,
        rel: RelId,
        _true_o: Option<EntityId>,
        channel: u64,
    ) -> Option<EntityId> {
        let kind = rel.spec().object;
        let pool = self.world.entities_of_kind(kind);
        if pool.is_empty() {
            return None;
        }
        let truth = self.world.objects_of(s, rel);
        let key = Self::fact_key(s, rel, None);
        // Sample from the popular head of the pool deterministically.
        let head = (pool.len() / 4).max(1).min(pool.len());
        for probe in 0..8u64 {
            let idx = (mix2(mix2(self.profile.seed, key), 0x3000 + channel + probe) % head as u64)
                as usize;
            let cand = pool[idx];
            if !truth.contains(&cand) && cand != s {
                return Some(cand);
            }
        }
        None
    }

    /// Recall the member set of a multi-valued fact `(s, rel, ·)`:
    /// each true member is an independent draw; occasionally a popular
    /// intruder is added (hallucinated extra member).
    pub fn recall_list(&self, s: EntityId, rel: RelId, mode: RecallMode) -> Vec<EntityId> {
        let truth = self.world.objects_of(s, rel);
        let mut believed = Vec::new();
        for &o in &truth {
            let key = Self::fact_key(s, rel, Some(o));
            let p = self.recall_prob_exp(
                s,
                rel,
                self.profile.list_recall,
                mode,
                Self::LIST_POP_EXPONENT,
            );
            if self.draw(key, 0) < p {
                believed.push(o);
            }
        }
        // Intruder: one wrong member with the confusion probability,
        // only when the model recalled something at all (total blanks
        // stay blank).
        if !believed.is_empty() {
            let key = Self::fact_key(s, rel, None);
            if self.draw(key, 4) < self.profile.confusion_rate * 0.3 {
                if let Some(wrong) = self.plausible_wrong_object(s, rel, truth.first().copied(), 5)
                {
                    if !believed.contains(&wrong) && !truth.contains(&wrong) {
                        believed.push(wrong);
                    }
                }
            }
        }
        believed
    }

    /// Public keyed uniform draw for behaviour-level decisions
    /// (withholding, verification fidelity, output slips). Stable per
    /// (model, key, channel).
    pub fn draw_event(&self, key: u64, channel: u64) -> f64 {
        self.draw(key, 0xE000 ^ channel)
    }

    /// Force a confident guess for the object of `(s, rel)` — used when
    /// building pseudo-graphs, where the model fills the knowledge frame
    /// even for facts it does not know (the paper's "leveraging the
    /// hallucination property").
    pub fn confabulate_object(&self, s: EntityId, rel: RelId, channel: u64) -> Option<EntityId> {
        let true_o = self.world.objects_of(s, rel).first().copied();
        self.plausible_wrong_object(s, rel, true_o, 0x7000 + channel)
    }

    /// Force a confident guess for a subject of `(·, rel, o)` — the
    /// who-list analogue of [`Self::confabulate_object`]: a popular
    /// entity of the relation's subject kind.
    pub fn confabulate_subject(&self, rel: RelId, o: EntityId, channel: u64) -> Option<EntityId> {
        let kind = rel.spec().subject;
        let pool = self.world.entities_of_kind(kind);
        if pool.is_empty() {
            return None;
        }
        let truth = self.world.subjects_with(rel, o);
        let key = mix2(0x9999, mix2(rel.0 as u64, o.0 as u64));
        let head = (pool.len() / 4).max(1).min(pool.len());
        for probe in 0..8u64 {
            let idx = (mix2(mix2(self.profile.seed, key), 0x8000 + channel + probe) % head as u64)
                as usize;
            let cand = pool[idx];
            if cand != o && !truth.contains(&cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Recall subjects of `(·, rel, o)` — "who are the pioneers of X".
    pub fn recall_subjects(&self, rel: RelId, o: EntityId, mode: RecallMode) -> Vec<EntityId> {
        let truth = self.world.subjects_with(rel, o);
        let mut believed = Vec::new();
        for &s in &truth {
            let key = mix2(Self::fact_key(s, rel, Some(o)), 0xB5);
            let p = self.recall_prob_exp(
                s,
                rel,
                self.profile.list_recall,
                mode,
                Self::LIST_POP_EXPONENT,
            );
            if self.draw(key, 0) < p {
                believed.push(s);
            }
        }
        believed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{generate, rel_by_name, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn recall_is_deterministic() {
        let w = world();
        let m = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let rel = rel_by_name("place_of_birth").unwrap();
        let persons = w.entities_of_kind(worldgen::EntityKind::Person);
        for &p in persons.iter().take(50) {
            assert_eq!(
                m.recall_object(p, rel, RecallMode::OneShot),
                m.recall_object(p, rel, RecallMode::OneShot)
            );
        }
    }

    #[test]
    fn cot_mode_is_monotone_improvement() {
        let w = world();
        let m = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let rel = rel_by_name("place_of_birth").unwrap();
        let mut upgrades = 0;
        for &p in w.entities_of_kind(worldgen::EntityKind::Person) {
            let one = m.recall_object(p, rel, RecallMode::OneShot);
            let cot = m.recall_object(p, rel, RecallMode::StepByStep);
            if one.is_correct() {
                assert!(cot.is_correct(), "CoT must not lose known facts");
            }
            if !one.is_correct() && cot.is_correct() {
                upgrades += 1;
            }
        }
        assert!(upgrades > 0, "CoT should upgrade some marginal facts");
    }

    #[test]
    fn gpt4_recalls_more_than_gpt35() {
        let w = world();
        let m35 = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let m4 = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let rel = rel_by_name("place_of_birth").unwrap();
        let count = |m: &ParametricMemory| {
            w.entities_of_kind(worldgen::EntityKind::Person)
                .iter()
                .filter(|&&p| m.recall_object(p, rel, RecallMode::OneShot).is_correct())
                .count()
        };
        assert!(count(&m4) > count(&m35));
    }

    #[test]
    fn recent_facts_mostly_unknown() {
        let w = world();
        let m = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let rel = rel_by_name("uses_chip").unwrap();
        let devices = w.entities_of_kind(worldgen::EntityKind::Device);
        let known = devices
            .iter()
            .flat_map(|&d| m.recall_list(d, rel, RecallMode::StepByStep))
            .count();
        let total: usize = devices.iter().map(|&d| w.objects_of(d, rel).len()).sum();
        assert!(total > 0);
        assert!(
            (known as f64) < (total as f64) * 0.25,
            "recent knowledge should be scarce: {known}/{total}"
        );
    }

    #[test]
    fn confusion_yields_wrong_but_plausible_entities() {
        let w = world();
        let m = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let rel = rel_by_name("place_of_birth").unwrap();
        let mut confused = 0;
        for &p in w.entities_of_kind(worldgen::EntityKind::Person) {
            if let Recall::Confused(wrong) = m.recall_object(p, rel, RecallMode::OneShot) {
                confused += 1;
                assert_eq!(w.entity(wrong).kind, worldgen::EntityKind::City);
                assert_ne!(Some(&wrong), w.objects_of(p, rel).first());
            }
        }
        assert!(confused > 10, "expected hallucinations, got {confused}");
    }

    #[test]
    fn list_recall_returns_subset_plus_occasional_intruder() {
        let w = world();
        let m = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let rel = rel_by_name("covers").unwrap();
        let mut any_partial = false;
        for &r in w.entities_of_kind(worldgen::EntityKind::MountainRange) {
            let truth = w.objects_of(r, rel);
            let believed = m.recall_list(r, rel, RecallMode::StepByStep);
            let correct = believed.iter().filter(|b| truth.contains(b)).count();
            let wrong = believed.len() - correct;
            assert!(wrong <= 1, "at most one intruder");
            if correct > 0 && correct < truth.len() {
                any_partial = true;
            }
        }
        assert!(any_partial, "recall should be partial somewhere");
    }

    #[test]
    fn sc_sampling_varies_marginal_answers() {
        let w = world();
        let m = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let rel = rel_by_name("place_of_birth").unwrap();
        let mut varies = false;
        for &p in w.entities_of_kind(worldgen::EntityKind::Person) {
            let s0 = m.recall_object_sampled(p, rel, RecallMode::StepByStep, 0);
            let s1 = m.recall_object_sampled(p, rel, RecallMode::StepByStep, 1);
            let s2 = m.recall_object_sampled(p, rel, RecallMode::StepByStep, 2);
            if s0 != s1 || s1 != s2 {
                varies = true;
                break;
            }
        }
        assert!(varies, "temperature sampling should vary some answers");
    }
}
