//! Shared helpers: label equality, predicate similarity, question-focus
//! extraction — the "semantic understanding" primitives a real LLM
//! applies implicitly when comparing a pseudo-graph against KG evidence.

use kgstore::hash::{stable_str_hash, FxHashSet};
use semvec::synonym::SynonymTable;
use semvec::token::normalize;
use semvec::verbalize::humanize_term;
use worldgen::{Intent, Question, RelId, World};

/// Case/punctuation-insensitive label equality.
pub fn labels_eq(a: &str, b: &str) -> bool {
    norm_label(a) == norm_label(b)
}

fn norm_label(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric() || c.is_whitespace())
        .flat_map(|c| c.to_lowercase())
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Canonical token set of a predicate term (humanised, stopword-free,
/// stemmed, synonym-folded).
pub fn pred_tokens(p: &str) -> FxHashSet<String> {
    let table = SynonymTable::builtin();
    normalize(&humanize_term(p))
        .into_iter()
        .map(|t| table.fold(&t).to_string())
        .collect()
}

/// Jaccard similarity of two predicates' canonical token sets.
pub fn pred_sim(a: &str, b: &str) -> f64 {
    let ta = pred_tokens(a);
    let tb = pred_tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.len() + tb.len() - inter;
    inter as f64 / union as f64
}

/// Whether predicate `p` plausibly expresses relation `rel` (matches
/// any of its verbalisations).
pub fn pred_matches_rel(p: &str, rel: RelId) -> bool {
    let spec = rel.spec();
    [spec.wikidata, spec.freebase, spec.cypher, spec.phrase]
        .iter()
        .any(|v| pred_sim(p, v) >= 0.30)
}

/// The labels of the entities the question is *about* (its focus), per
/// intent — what a reader identifies as the topic.
pub fn focus_labels(world: &World, q: &Question) -> Vec<String> {
    match &q.intent {
        Intent::Chain { seed, .. } | Intent::List { seed, .. } => {
            vec![world.label(*seed).to_string()]
        }
        Intent::Compare { a, b, .. } => {
            vec![world.label(*a).to_string(), world.label(*b).to_string()]
        }
        Intent::WhoList { object, .. } => vec![world.label(*object).to_string()],
    }
}

/// The relations the question asks about.
pub fn intent_relations(q: &Question) -> Vec<RelId> {
    match &q.intent {
        Intent::Chain { path, .. } => path.clone(),
        Intent::Compare { rel, .. } | Intent::List { rel, .. } | Intent::WhoList { rel, .. } => {
            vec![*rel]
        }
    }
}

/// Stable key of a question (drives per-question behavioural draws).
pub fn question_key(q: &Question) -> u64 {
    stable_str_hash(&q.id)
}

/// Whether a label is a mediator/statement artifact rather than a real
/// entity (readers skip these when answering).
pub fn is_statement_artifact(label: &str) -> bool {
    let l = label.trim_start_matches('<');
    l.starts_with("statement ") || l == "statement" || l.starts_with("S#")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_equality_ignores_case_and_punct() {
        assert!(labels_eq("Yao Ming", "yao ming"));
        assert!(labels_eq("U.S.A", "usa")); // punctuation vanishes entirely
        assert!(!labels_eq("Lake-Superior", "Lake Superior"));
        assert!(!labels_eq("Yao Ming", "Yao Min"));
    }

    #[test]
    fn pred_sim_matches_schema_variants() {
        assert!(pred_sim("BORN_IN", "place of birth") > 0.3);
        assert!(pred_sim("/people/person/place_of_birth", "place of birth") > 0.6);
        assert!(pred_sim("COVERS", "country") < 0.3);
    }

    #[test]
    fn pred_matches_rel_works_for_cypher_types() {
        let rel = worldgen::rel_by_name("place_of_birth").unwrap();
        assert!(pred_matches_rel("BORN_IN", rel));
        assert!(pred_matches_rel("place of birth", rel));
        assert!(!pred_matches_rel("record label", rel));
    }

    #[test]
    fn statement_artifacts_detected() {
        assert!(is_statement_artifact("statement 123"));
        assert!(!is_statement_artifact("Shanghai"));
    }
}
