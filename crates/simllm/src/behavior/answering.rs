//! Baseline answering behaviours: IO, CoT, and temperature-sampled
//! completions for self-consistency.

use crate::memory::{ParametricMemory, Recall, RecallMode};
use kgstore::hash::mix2;
use worldgen::datasets::english_list;
use worldgen::{EntityId, Intent, Question, RelId};

/// Resolve a relation chain through parametric memory.
///
/// `one_shot` adds the composition penalty: when answering multi-hop
/// questions without intermediate reasoning, the model loses track of a
/// hop with probability `1 − hop_decay` even if it knows the fact.
pub fn resolve_chain(
    mem: &ParametricMemory<'_>,
    seed: EntityId,
    path: &[RelId],
    mode: RecallMode,
    one_shot: bool,
) -> Recall {
    let mut cur = seed;
    let mut all_correct = true;
    for (i, &rel) in path.iter().enumerate() {
        let mut r = mem.recall_object(cur, rel, mode);
        if one_shot && i > 0 && r.is_correct() {
            // Composition slip.
            let key = mix2(cur.0 as u64, 0xC0 + rel.0 as u64);
            if mem.draw_event(key, 0x11) >= mem.profile().hop_decay {
                r = mem
                    .confabulate_object(cur, rel, 0x12)
                    .map_or(Recall::Unknown, Recall::Confused);
            }
        }
        match r.believed() {
            Some(next) => {
                all_correct &= r.is_correct();
                cur = next;
            }
            None => return Recall::Unknown,
        }
    }
    // Correctness is judged by the final entity: a wrong intermediate
    // can coincidentally land on the right answer, which the scorer
    // will accept — as it would for a real model.
    if all_correct {
        Recall::Known(cur)
    } else {
        Recall::Confused(cur)
    }
}

/// Sampled variant of [`resolve_chain`] for self-consistency.
fn resolve_chain_sampled(
    mem: &ParametricMemory<'_>,
    seed: EntityId,
    path: &[RelId],
    index: u32,
) -> Recall {
    let mut cur = seed;
    let mut all_correct = true;
    for &rel in path {
        let r = mem.recall_object_sampled(cur, rel, RecallMode::StepByStep, index);
        match r.believed() {
            Some(next) => {
                all_correct &= r.is_correct();
                cur = next;
            }
            None => return Recall::Unknown,
        }
    }
    if all_correct {
        Recall::Known(cur)
    } else {
        Recall::Confused(cur)
    }
}

fn labels(mem: &ParametricMemory<'_>, ids: &[EntityId]) -> Vec<String> {
    let mut v: Vec<String> = ids
        .iter()
        .map(|&e| mem.world().label(e).to_string())
        .collect();
    // Canonical enumeration order; see `collect_objects` in
    // `graph_answer` and the references in `worldgen::datasets::nature`.
    v.sort();
    v
}

/// Confident guesses for an empty list recall: open-ended questions
/// rarely get "I don't know" from a chat model — they get plausible
/// hallucinations.
fn guessed_objects(
    mem: &ParametricMemory<'_>,
    seed: EntityId,
    rel: RelId,
    n: usize,
) -> Vec<EntityId> {
    let mut out = Vec::new();
    for ch in 0..(n as u64 * 4) {
        if out.len() >= n {
            break;
        }
        if let Some(g) = mem.confabulate_object(seed, rel, 0x90 + ch) {
            if !out.contains(&g) {
                out.push(g);
            }
        }
    }
    out
}

/// Subject-side analogue of [`guessed_objects`].
fn guessed_subjects(
    mem: &ParametricMemory<'_>,
    rel: RelId,
    object: EntityId,
    n: usize,
) -> Vec<EntityId> {
    let mut out = Vec::new();
    for ch in 0..(n as u64 * 4) {
        if out.len() >= n {
            break;
        }
        if let Some(g) = mem.confabulate_subject(rel, object, 0x98 + ch) {
            if !out.contains(&g) {
                out.push(g);
            }
        }
    }
    out
}

/// Direct (IO) answering.
pub fn io_answer(mem: &ParametricMemory<'_>, q: &Question) -> String {
    match &q.intent {
        Intent::Chain { seed, path } => {
            match resolve_chain(mem, *seed, path, RecallMode::OneShot, true).believed() {
                Some(e) => format!("{}.", mem.world().label(e)),
                None => "I am not sure about that.".to_string(),
            }
        }
        Intent::Compare { a, b, rel } => {
            compare_prose(mem, *a, *b, *rel, RecallMode::OneShot, false)
        }
        Intent::List { seed, rel } => {
            // The 6-shot IO examples are one-liners, so IO answers stay
            // terse: at most two items, no scaffold.
            let mut believed = mem.recall_list(*seed, *rel, RecallMode::OneShot);
            believed.truncate(3);
            if believed.is_empty() {
                believed = guessed_objects(mem, *seed, *rel, 2);
            }
            if believed.is_empty() {
                "I am not sure about that.".to_string()
            } else if believed.len() == 1 {
                format!("I think the answer is {}.", mem.world().label(believed[0]))
            } else {
                format!(
                    "{} {} {}.",
                    mem.world().label(*seed),
                    rel.spec().phrase,
                    english_list(&labels(mem, &believed))
                )
            }
        }
        Intent::WhoList { object, rel } => {
            let mut believed = mem.recall_subjects(*rel, *object, RecallMode::OneShot);
            believed.truncate(3);
            if believed.is_empty() {
                believed = guessed_subjects(mem, *rel, *object, 2);
            }
            if believed.is_empty() {
                "I am not sure about that.".to_string()
            } else {
                format!(
                    "pioneers of {} include {}.",
                    mem.world().label(*object),
                    english_list(&labels(mem, &believed))
                )
            }
        }
    }
}

/// Chain-of-thought answering.
pub fn cot_answer(mem: &ParametricMemory<'_>, q: &Question) -> String {
    match &q.intent {
        Intent::Chain { seed, path } => {
            match resolve_chain(mem, *seed, path, RecallMode::StepByStep, false).believed() {
                Some(e) => format!(
                    "Let me reason step by step. So the answer is {}.",
                    mem.world().label(e)
                ),
                None => "Let me reason step by step. I cannot determine the answer.".to_string(),
            }
        }
        Intent::Compare { a, b, rel } => {
            compare_prose(mem, *a, *b, *rel, RecallMode::StepByStep, true)
        }
        Intent::List { seed, rel } => {
            let mut believed = mem.recall_list(*seed, *rel, RecallMode::StepByStep);
            if believed.is_empty() {
                believed = guessed_objects(mem, *seed, *rel, 2);
            }
            if believed.is_empty() {
                "Let me think step by step. I cannot recall the specifics.".to_string()
            } else if believed.len() == 1 {
                format!(
                    "Let me think step by step. I think the answer is {}.",
                    mem.world().label(believed[0])
                )
            } else {
                format!(
                    "Let me think step by step. {} {} {}, as far as I can recall.",
                    mem.world().label(*seed),
                    rel.spec().phrase,
                    english_list(&labels(mem, &believed))
                )
            }
        }
        Intent::WhoList { object, rel } => {
            let mut believed = mem.recall_subjects(*rel, *object, RecallMode::StepByStep);
            if believed.is_empty() {
                believed = guessed_subjects(mem, *rel, *object, 2);
            }
            if believed.is_empty() {
                "Let me think step by step. I cannot recall the specifics.".to_string()
            } else {
                format!(
                    "Let me think step by step. Pioneers of {} include {}, as far \
                     as I can recall.",
                    mem.world().label(*object),
                    english_list(&labels(mem, &believed))
                )
            }
        }
    }
}

/// One temperature-0.7 sample (self-consistency building block).
pub fn sampled_answer(mem: &ParametricMemory<'_>, q: &Question, index: u32) -> String {
    match &q.intent {
        Intent::Chain { seed, path } => {
            match resolve_chain_sampled(mem, *seed, path, index).believed() {
                Some(e) => format!("So the answer is {}.", mem.world().label(e)),
                None => "I cannot determine the answer.".to_string(),
            }
        }
        // Sampling only perturbs chain recall; other intents reuse CoT.
        _ => cot_answer(mem, q),
    }
}

fn compare_prose(
    mem: &ParametricMemory<'_>,
    a: EntityId,
    b: EntityId,
    rel: RelId,
    mode: RecallMode,
    explain: bool,
) -> String {
    let ca = mem.recall_list(a, rel, mode).len();
    let cb = mem.recall_list(b, rel, mode).len();
    let winner = match ca.cmp(&cb) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => {
            // Undecided: guess deterministically per question.
            let key = mix2(a.0 as u64, b.0 as u64);
            if mem.draw_event(key, 0x21) < 0.5 {
                a
            } else {
                b
            }
        }
    };
    let w = mem.world().label(winner);
    if explain {
        format!("Counting what I can recall of each: so the answer is {w}.")
    } else {
        format!("{w}.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;
    use worldgen::datasets::{nature, qald, simpleq};
    use worldgen::{generate, World, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn io_answers_are_short_and_deterministic() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = simpleq::generate(&w, 20, 1);
        for q in &ds.questions {
            let a1 = io_answer(&mem, q);
            let a2 = io_answer(&mem, q);
            assert_eq!(a1, a2);
            assert!(!a1.is_empty());
        }
    }

    #[test]
    fn cot_beats_io_on_multi_hop() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = qald::generate(&w, 150, 2);
        let mut io_hits = 0;
        let mut cot_hits = 0;
        for q in &ds.questions {
            let worldgen::Gold::Accepted(acc) = &q.gold else {
                continue;
            };
            if acc.iter().any(|g| io_answer(&mem, q).contains(g.as_str())) {
                io_hits += 1;
            }
            if acc.iter().any(|g| cot_answer(&mem, q).contains(g.as_str())) {
                cot_hits += 1;
            }
        }
        assert!(cot_hits >= io_hits, "cot {cot_hits} vs io {io_hits}");
    }

    #[test]
    fn unknown_answers_do_not_name_entities() {
        let w = world();
        // A profile that knows nothing and never confabulates.
        let mut p = ModelProfile::gpt35_sim();
        p.fact_recall = 0.0;
        p.cot_bonus = 1.0;
        p.activation_bonus = 1.0;
        p.confusion_rate = 0.0;
        p.list_recall = 0.0;
        let mem = ParametricMemory::new(&w, p);
        let ds = simpleq::generate(&w, 10, 3);
        for q in &ds.questions {
            let a = io_answer(&mem, q);
            assert!(a.contains("not sure"), "{a}");
        }
    }

    #[test]
    fn nature_answers_enumerate() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let ds = nature::generate(&w, 30, 4);
        let enumerated = ds
            .questions
            .iter()
            .map(|q| cot_answer(&mem, q))
            .filter(|a| a.contains(" and ") || a.contains(','))
            .count();
        assert!(enumerated > 5, "expected list answers, got {enumerated}");
    }

    #[test]
    fn sampled_answers_vary_by_index() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = qald::generate(&w, 60, 5);
        let mut varied = false;
        for q in &ds.questions {
            let s: Vec<String> = (0..3).map(|i| sampled_answer(&mem, q, i)).collect();
            if s[0] != s[1] || s[1] != s[2] {
                varied = true;
                break;
            }
        }
        assert!(varied);
    }
}
