//! Answer generation from the fixed graph (paper §3.3): the model is
//! shown `G_f` and "largely follows the graph for responses" (§4.6.4),
//! with a small slip rate where it ignores the graph and answers from
//! memory instead.

use crate::behavior::answering;
use crate::behavior::util::{is_statement_artifact, labels_eq, pred_matches_rel, question_key};
use crate::memory::{ParametricMemory, RecallMode};
use kgstore::StrTriple;
use worldgen::datasets::english_list;
use worldgen::{EntityId, Intent, Question, RelId};

/// Probability the model disregards the provided graph entirely.
const GRAPH_SLIP_RATE: f64 = 0.02;

/// Answer the question from the fixed graph `G_f`.
pub fn answer_from_graph(mem: &ParametricMemory<'_>, q: &Question, graph: &[StrTriple]) -> String {
    let qkey = question_key(q);
    if mem.draw_event(qkey, 0xD0) < GRAPH_SLIP_RATE || graph.is_empty() {
        // §4.6.4 slip: fall back to chain-of-thought from memory.
        return answering::cot_answer(mem, q);
    }
    match &q.intent {
        Intent::Chain { seed, path } => chain_answer(mem, q, graph, *seed, path),
        Intent::List { seed, rel } => {
            let subject = mem.world().label(*seed);
            let objects = collect_objects(graph, subject, *rel);
            match objects.len() {
                0 => answering::cot_answer(mem, q),
                1 => format!("Based on the graph, the answer is {}.", objects[0]),
                _ => format!(
                    "Based on the graph, {} {} {}.",
                    subject,
                    rel.spec().phrase,
                    english_list(&objects)
                ),
            }
        }
        Intent::WhoList { object, rel } => {
            let field = mem.world().label(*object);
            let subjects = collect_subjects(graph, field, *rel);
            if subjects.is_empty() {
                return answering::cot_answer(mem, q);
            }
            format!(
                "Based on the graph, pioneers of {} include {}.",
                field,
                english_list(&subjects)
            )
        }
        Intent::Compare { a, b, rel } => {
            let (la, lb) = (mem.world().label(*a), mem.world().label(*b));
            let ca = collect_objects(graph, la, *rel).len();
            let cb = collect_objects(graph, lb, *rel).len();
            let winner = match ca.cmp(&cb) {
                std::cmp::Ordering::Greater => la,
                std::cmp::Ordering::Less => lb,
                std::cmp::Ordering::Equal => {
                    // Graph is inconclusive: fall back to memory counts.
                    let ma = mem.recall_list(*a, *rel, RecallMode::StepByStep).len();
                    let mb = mem.recall_list(*b, *rel, RecallMode::StepByStep).len();
                    if ma >= mb {
                        la
                    } else {
                        lb
                    }
                }
            };
            format!("Based on the graph above, the answer is {winner}.")
        }
    }
}

fn chain_answer(
    mem: &ParametricMemory<'_>,
    q: &Question,
    graph: &[StrTriple],
    seed: EntityId,
    path: &[RelId],
) -> String {
    let mut cur = mem.world().label(seed).to_string();
    let mut cur_id = Some(seed);
    for (i, &rel) in path.iter().enumerate() {
        let step = collect_objects(graph, &cur, rel);
        if let Some(next) = step.first() {
            cur = next.clone();
            cur_id = None; // graph-derived; entity id unknown to the model
        } else {
            // The graph does not cover this hop. A strong model falls
            // back to its own knowledge; a weaker one is *distracted*
            // by the irrelevant context and grabs a salient graph item
            // instead (why QSM can underperform IO on multi-hop).
            let qkey = question_key(q);
            if mem.draw_event(qkey, 0xD1 + i as u64) < mem.profile().distraction_rate {
                if let Some(salient) = graph
                    .iter()
                    .map(|t| t.o.as_str())
                    .find(|o| !is_statement_artifact(o) && !labels_eq(o, &cur))
                {
                    return format!("Based on the graph above, the answer is {salient}.");
                }
            }
            let believed = cur_id
                .or_else(|| find_entity_by_label(mem, &cur))
                .and_then(|e| mem.recall_object(e, rel, RecallMode::StepByStep).believed());
            match believed {
                Some(next) => {
                    cur = mem.world().label(next).to_string();
                    cur_id = Some(next);
                }
                None => {
                    return "Based on the graph above, I cannot determine the answer.".to_string();
                }
            }
        }
    }
    let _ = q;
    format!("Based on the graph above, the answer is {cur}.")
}

/// The model reads a label from the graph and maps it back to the
/// entity it knows by that name (surface-level understanding: picks the
/// most popular holder, like any reader would).
fn find_entity_by_label(mem: &ParametricMemory<'_>, label: &str) -> Option<EntityId> {
    let w = mem.world();
    let mut best: Option<EntityId> = None;
    for e in &w.entities {
        if labels_eq(&e.label, label) {
            match best {
                Some(b) if w.entity(b).popularity >= e.popularity => {}
                _ => best = Some(e.id),
            }
        }
    }
    best
}

fn collect_objects(graph: &[StrTriple], subject: &str, rel: RelId) -> Vec<String> {
    let mut out = Vec::new();
    for t in graph {
        if labels_eq(&t.s, subject)
            && pred_matches_rel(&t.p, rel)
            && !is_statement_artifact(&t.o)
            && !out.iter().any(|o: &String| labels_eq(o, &t.o))
        {
            out.push(t.o.clone());
        }
    }
    // Canonical enumeration order (see `worldgen::datasets::nature`):
    // answers and references both sort alphabetically so ROUGE-L
    // measures coverage, not incidental ordering.
    out.sort();
    out
}

fn collect_subjects(graph: &[StrTriple], object: &str, rel: RelId) -> Vec<String> {
    let mut out = Vec::new();
    for t in graph {
        if labels_eq(&t.o, object)
            && pred_matches_rel(&t.p, rel)
            && !is_statement_artifact(&t.s)
            && !out.iter().any(|s: &String| labels_eq(s, &t.s))
        {
            out.push(t.s.clone());
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;
    use worldgen::datasets::{nature, simpleq};
    use worldgen::{generate, Gold, World, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn follows_single_hop_graph() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = simpleq::generate(&w, 30, 1);
        let mut followed = 0;
        for q in &ds.questions {
            let Intent::Chain { seed, path } = &q.intent else {
                unreachable!()
            };
            let s = w.label(*seed);
            let graph = vec![StrTriple::new(
                s,
                path[0].spec().wikidata,
                "Graph Answer Town",
            )];
            let a = answer_from_graph(&mem, q, &graph);
            if a.contains("Graph Answer Town") {
                followed += 1;
            }
        }
        // The 2% slip rate may skip a question or two, never more.
        assert!(followed >= 27, "graph must dominate answers: {followed}/30");
    }

    #[test]
    fn list_answers_enumerate_graph_objects() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let ds = nature::generate(&w, 40, 2);
        for q in &ds.questions {
            let Intent::List { seed, rel } = &q.intent else {
                continue;
            };
            let s = w.label(*seed);
            let graph = vec![
                StrTriple::new(s, rel.spec().wikidata, "AlphaLand"),
                StrTriple::new(s, rel.spec().wikidata, "BetaLand"),
            ];
            let a = answer_from_graph(&mem, q, &graph);
            if a.contains("AlphaLand") {
                assert!(a.contains("BetaLand"), "{a}");
                return;
            }
        }
        panic!("no list question followed the graph");
    }

    #[test]
    fn statement_artifacts_are_skipped() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let ds = nature::generate(&w, 40, 3);
        for q in &ds.questions {
            let Intent::List { seed, rel } = &q.intent else {
                continue;
            };
            let s = w.label(*seed);
            let graph = vec![
                StrTriple::new(s, rel.spec().wikidata, "statement 42"),
                StrTriple::new(s, rel.spec().wikidata, "RealLand"),
            ];
            let a = answer_from_graph(&mem, q, &graph);
            if a.contains("RealLand") {
                assert!(!a.contains("statement 42"), "{a}");
                return;
            }
        }
        panic!("no applicable question found");
    }

    #[test]
    fn empty_graph_falls_back_to_memory() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = simpleq::generate(&w, 5, 4);
        for q in &ds.questions {
            let a = answer_from_graph(&mem, q, &[]);
            assert!(!a.is_empty());
            assert!(!a.starts_with("Based on the graph above"), "{a}");
        }
    }

    #[test]
    fn correct_graph_yields_gold_answer() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = simpleq::generate(&w, 30, 5);
        let mut hits = 0;
        for q in &ds.questions {
            let Intent::Chain { seed, path } = &q.intent else {
                unreachable!()
            };
            let objs = w.objects_of(*seed, path[0]);
            let graph = vec![StrTriple::new(
                w.label(*seed),
                path[0].spec().wikidata,
                w.label(objs[0]),
            )];
            let a = answer_from_graph(&mem, q, &graph);
            let Gold::Accepted(acc) = &q.gold else {
                unreachable!()
            };
            if acc.iter().any(|g| a.contains(g.as_str())) {
                hits += 1;
            }
        }
        assert!(
            hits >= 27,
            "gold graph should yield gold answers: {hits}/30"
        );
    }
}
