//! Pseudo-graph generation: the model externalises the knowledge frame
//! it believes the question needs, as Cypher `CREATE` statements.
//!
//! The defining property (paper §3.1): even when the model's *facts* are
//! hallucinated, the *structure* — which entities and relations matter —
//! is usually right, which is exactly what the downstream semantic query
//! needs. So unknown facts are filled with confident guesses rather than
//! omitted, while genuinely uncertain list members may be withheld
//! (`pseudo_withhold`, the GPT-4 conservativeness of Table 5).

use crate::behavior::util::question_key;
use crate::memory::{ParametricMemory, RecallMode};
use cypher::{NodePattern, PathPattern, RelPattern, Script, Statement};
use kgstore::hash::mix2;
use worldgen::{EntityId, Intent, Question, RelId};

/// Minimum breadth of a list-shaped pseudo-graph. The Figure-3 prompt
/// demands a graph "as complete as possible"; when the model's actual
/// knowledge is thinner than this, it pads the frame with confident
/// guesses — hallucinated members whose *structure* still tells the
/// semantic query exactly what to look for.
const MIN_LIST_BREADTH: usize = 4;

/// Generate the raw LLM output for the Figure-3 prompt: planning prose
/// followed by Cypher. Downstream runs `cypher::decode_llm_output` on it.
pub fn pseudo_cypher(mem: &ParametricMemory<'_>, q: &Question) -> String {
    let qkey = question_key(q);
    // §4.6.1 failure mode: the model believes it should *query* the KG.
    if mem.draw_event(qkey, 0xCE) < mem.profile().cypher_match_rate {
        // About half the time the model "checks the graph" first and then
        // builds the frame anyway — the MATCH still poisons the whole
        // script under construction-only execution, but a repair pass can
        // salvage the CREATEs that follow.
        if mem.draw_event(qkey, 0xCF) < 0.5 {
            let script = build_script(mem, q);
            return format!(
                "<step 1> {{Knowledge Planning}}:\nLet me check what the graph already knows, \
                 then write down the frame.\n<step 2> {{Knowledge Graph}}:\n\
                 MATCH (n) RETURN n // {}\n{}\n",
                q.text, script
            );
        }
        return format!(
            "<step 1> {{Knowledge Planning}}:\nI need to look this up in the graph.\n\
             <step 2> {{Knowledge Graph}}:\nMATCH (n) RETURN n // {}\n",
            q.text
        );
    }
    let script = build_script(mem, q);
    format!(
        "<step 1> {{Knowledge Planning}}:\nTo answer \"{}\" I need the entities involved \
         and their key relations.\n<step 2> {{Knowledge Graph}}:\n{}\n",
        q.text, script
    )
}

/// Build the Cypher AST for a question.
pub fn build_script(mem: &ParametricMemory<'_>, q: &Question) -> Script {
    let mut b = ScriptBuilder::new(mem);
    match &q.intent {
        Intent::Chain { seed, path } => b.chain(*seed, path),
        Intent::List { seed, rel } => b.list(*seed, *rel),
        Intent::WhoList { object, rel } => b.who_list(*object, *rel),
        Intent::Compare { a, b: b2, rel } => {
            b.list(*a, *rel);
            b.list(*b2, *rel);
        }
    }
    b.finish()
}

struct ScriptBuilder<'m, 'w> {
    mem: &'m ParametricMemory<'w>,
    statements: Vec<Statement>,
    var_counter: usize,
}

impl<'m, 'w> ScriptBuilder<'m, 'w> {
    fn new(mem: &'m ParametricMemory<'w>) -> Self {
        Self {
            mem,
            statements: Vec::new(),
            var_counter: 0,
        }
    }

    fn fresh_var(&mut self, hint: &str) -> String {
        self.var_counter += 1;
        let stem: String = hint
            .chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(|c| c.to_lowercase())
            .take(12)
            .collect();
        format!(
            "{}{}",
            if stem.is_empty() { "n".into() } else { stem },
            self.var_counter
        )
    }

    fn node(&mut self, e: EntityId) -> NodePattern {
        let w = self.mem.world();
        let ent = w.entity(e);
        let var = self.fresh_var(&ent.label);
        let mut n = NodePattern::named(var, ent.kind.cypher_label(), ent.label.clone());
        // Like the paper's Figure-3 examples, every node carries a
        // property — so every entity decodes into a subject of at least
        // one triple, making it a first-class anchor for the semantic
        // query and a countable candidate for pruning (`S_p`).
        n.props.push((
            "type".to_string(),
            kgstore::Value::Str(ent.kind.noun().to_string()),
        ));
        n
    }

    fn edge(&mut self, from: NodePattern, rel: RelId, to: NodePattern) {
        self.statements.push(Statement::Create(vec![PathPattern {
            start: from,
            hops: vec![(RelPattern::out(rel.spec().cypher), to)],
        }]));
    }

    /// Chain: walk believed hops, confabulating unknowns so the frame is
    /// complete.
    fn chain(&mut self, seed: EntityId, path: &[RelId]) {
        let mut cur = seed;
        let mut cur_node = self.node(seed);
        for (i, &rel) in path.iter().enumerate() {
            let believed = self
                .mem
                .recall_object(cur, rel, RecallMode::PseudoGraph)
                .believed()
                .or_else(|| self.mem.confabulate_object(cur, rel, 0x40 + i as u64));
            let Some(next) = believed else { break };
            let next_node = self.node(next);
            self.edge(cur_node, rel, next_node.clone());
            cur_node = NodePattern::var_ref(next_node.var.clone().expect("named node has var"));
            cur = next;
        }
    }

    /// List: believed members, each withheld with `pseudo_withhold`;
    /// at least one (possibly confabulated) member is always emitted so
    /// the structure survives.
    fn list(&mut self, seed: EntityId, rel: RelId) {
        let believed = self.mem.recall_list(seed, rel, RecallMode::PseudoGraph);
        let withhold = self.mem.profile().pseudo_withhold;
        let seed_node = self.node(seed);
        let seed_var = NodePattern::var_ref(seed_node.var.clone().expect("named node has var"));
        let mut emitted = 0;
        for (i, &m) in believed.iter().enumerate() {
            let key = mix2(seed.0 as u64, mix2(rel.0 as u64, m.0 as u64));
            if i > 0 && self.mem.draw_event(key, 0x51) < withhold {
                continue; // withheld: not confident enough to write down
            }
            let m_node = self.node(m);
            let from = if emitted == 0 {
                seed_node.clone()
            } else {
                seed_var.clone()
            };
            self.edge(from, rel, m_node);
            emitted += 1;
        }
        // Pad the frame with confident guesses up to the minimum
        // breadth (distinct from what was already emitted). The model
        // knows the relation's cardinality from common sense — it never
        // claims four developers for one device.
        let breadth = MIN_LIST_BREADTH.min(rel.spec().max_objects);
        let mut guessed: Vec<EntityId> = Vec::new();
        let mut ch = 0x60u64;
        while emitted + guessed.len() < breadth && ch < 0x60 + 12 {
            ch += 1;
            if let Some(g) = self.mem.confabulate_object(seed, rel, ch) {
                if !believed.contains(&g) && !guessed.contains(&g) {
                    guessed.push(g);
                }
            }
        }
        for g in guessed {
            let g_node = self.node(g);
            let from = if emitted == 0 {
                seed_node.clone()
            } else {
                seed_var.clone()
            };
            self.edge(from, rel, g_node);
            emitted += 1;
        }
        if emitted == 0 {
            // Still emit the bare subject node.
            self.statements.push(Statement::Create(vec![PathPattern {
                start: seed_node,
                hops: vec![],
            }]));
        }
    }

    /// Who-list: believed subjects pointing at the focus object.
    fn who_list(&mut self, object: EntityId, rel: RelId) {
        let believed = self
            .mem
            .recall_subjects(rel, object, RecallMode::PseudoGraph);
        let withhold = self.mem.profile().pseudo_withhold;
        let obj_node = self.node(object);
        let obj_var = NodePattern::var_ref(obj_node.var.clone().expect("named node has var"));
        let mut emitted = 0;
        for (i, &s) in believed.iter().enumerate() {
            let key = mix2(s.0 as u64, mix2(rel.0 as u64, object.0 as u64));
            if i > 0 && self.mem.draw_event(key, 0x53) < withhold {
                continue;
            }
            let s_node = self.node(s);
            let to = if emitted == 0 {
                obj_node.clone()
            } else {
                obj_var.clone()
            };
            self.edge(s_node, rel, to);
            emitted += 1;
        }
        // Pad with plausible guessed subjects: the structure (people
        // PIONEER_OF field) is what retrieval needs, right or wrong.
        let mut guessed: Vec<EntityId> = Vec::new();
        let mut ch = 0x54u64;
        while emitted + guessed.len() < MIN_LIST_BREADTH && ch < 0x54 + 12 {
            ch += 1;
            if let Some(s) = self.mem.confabulate_subject(rel, object, ch) {
                if !believed.contains(&s) && !guessed.contains(&s) {
                    guessed.push(s);
                }
            }
        }
        for s in guessed {
            let s_node = self.node(s);
            let to = if emitted == 0 {
                obj_node.clone()
            } else {
                obj_var.clone()
            };
            self.edge(s_node, rel, to);
            emitted += 1;
        }
        let _ = emitted;
    }

    fn finish(self) -> Script {
        Script {
            statements: self.statements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;
    use cypher::decode_llm_output;
    use worldgen::datasets::{nature, qald, simpleq};
    use worldgen::{generate, World, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn pseudo_output_decodes_into_triples() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = simpleq::generate(&w, 30, 1);
        let mut ok = 0;
        for q in &ds.questions {
            let out = pseudo_cypher(&mem, q);
            if let Ok(triples) = decode_llm_output(&out) {
                assert!(!triples.is_empty(), "empty pseudo-graph for {}", q.text);
                ok += 1;
            }
        }
        assert!(ok >= 29, "almost all scripts must decode; got {ok}/30");
    }

    #[test]
    fn pseudo_graph_mentions_question_subject() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let ds = simpleq::generate(&w, 20, 2);
        for q in &ds.questions {
            let worldgen::Intent::Chain { seed, .. } = &q.intent else {
                unreachable!()
            };
            let out = pseudo_cypher(&mem, q);
            if let Ok(triples) = decode_llm_output(&out) {
                let seed_label = w.label(*seed);
                assert!(
                    triples
                        .iter()
                        .any(|t| t.s == seed_label || t.o == seed_label),
                    "pseudo-graph must be anchored at {seed_label}: {triples:?}"
                );
            }
        }
    }

    #[test]
    fn spurious_match_rate_is_respected() {
        let w = world();
        let mut p = ModelProfile::gpt35_sim();
        p.cypher_match_rate = 1.0; // force the failure
        let mem = ParametricMemory::new(&w, p);
        let ds = simpleq::generate(&w, 5, 3);
        for q in &ds.questions {
            let out = pseudo_cypher(&mem, q);
            let err = decode_llm_output(&out).unwrap_err();
            assert!(err.is_spurious_match());
        }
    }

    #[test]
    fn some_spurious_match_output_is_salvageable() {
        let w = world();
        let mut p = ModelProfile::gpt35_sim();
        p.cypher_match_rate = 1.0; // every question takes the failure branch
        let mem = ParametricMemory::new(&w, p);
        let ds = simpleq::generate(&w, 30, 7);
        let (mut bare, mut mixed) = (0, 0);
        for q in &ds.questions {
            let out = pseudo_cypher(&mem, q);
            // All failure outputs must still fail raw execution...
            assert!(decode_llm_output(&out).unwrap_err().is_spurious_match());
            if out.contains("CREATE") {
                mixed += 1;
                // ...but the mixed ones carry a salvageable frame.
                let src = cypher::extract_cypher(&out);
                let repaired = cypher::repair(&cypher::parse_spanned(&src).unwrap().script);
                let graph = {
                    let mut exec = cypher::Executor::new();
                    exec.run(&repaired.script, cypher::Mode::CreateOnly)
                        .unwrap();
                    exec.into_graph()
                };
                assert!(
                    !graph.decode_triples().is_empty(),
                    "salvage must recover triples"
                );
            } else {
                bare += 1;
            }
        }
        assert!(
            bare > 5 && mixed > 5,
            "both variants expected: {bare} bare, {mixed} mixed"
        );
    }

    #[test]
    fn chains_emit_multi_hop_structure() {
        let w = world();
        let mem = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let ds = qald::generate(&w, 40, 4);
        let mut multi = 0;
        for q in &ds.questions {
            if !matches!(q.intent, worldgen::Intent::Chain { .. }) {
                continue;
            }
            let out = pseudo_cypher(&mem, q);
            if let Ok(triples) = decode_llm_output(&out) {
                if triples.len() >= 2 {
                    multi += 1;
                }
            }
        }
        assert!(multi > 5, "multi-hop pseudo-graphs expected, got {multi}");
    }

    #[test]
    fn gpt4_withholds_more_list_members_than_gpt35() {
        let w = world();
        let m35 = ParametricMemory::new(&w, ModelProfile::gpt35_sim());
        let m4 = ParametricMemory::new(&w, ModelProfile::gpt4_sim());
        let ds = nature::generate(&w, 40, 5);
        let count = |mem: &ParametricMemory| -> usize {
            ds.questions
                .iter()
                .filter_map(|q| decode_llm_output(&pseudo_cypher(mem, q)).ok())
                .map(|t| t.len())
                .sum()
        };
        // GPT-4 knows more but withholds much more aggressively in
        // graph form; the net must not exceed a modest factor.
        let c35 = count(&m35) as f64;
        let c4 = count(&m4) as f64;
        assert!(c4 < c35 * 1.35, "withholding not effective: {c4} vs {c35}");
    }

    #[test]
    fn structure_survives_total_ignorance() {
        let w = world();
        let mut p = ModelProfile::gpt35_sim();
        p.fact_recall = 0.0;
        p.list_recall = 0.0;
        p.recent_recall = 0.0;
        p.confusion_rate = 0.0;
        let mem = ParametricMemory::new(&w, p);
        let ds = nature::generate(&w, 20, 6);
        for q in &ds.questions {
            let out = pseudo_cypher(&mem, q);
            let triples = decode_llm_output(&out).expect("script still valid");
            assert!(
                !triples.is_empty(),
                "even an ignorant model must emit the knowledge frame: {}",
                q.text
            );
        }
    }
}
