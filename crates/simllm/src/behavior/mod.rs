//! Behaviours of the simulated model, one module per task family.
//!
//! All fact access goes through [`crate::memory::ParametricMemory`];
//! all stochastic decisions are stable keyed draws, so every behaviour
//! is a pure function of (world, profile, question).

pub mod answering;
pub mod graph_answer;
pub mod pseudo;
pub mod util;
pub mod verify;
