//! Pseudo-graph verification (paper §3.2.2): the model edits its
//! pseudo-graph against retrieved ground-graph evidence — deleting or
//! correcting contradicted triples and adding missing ones — producing
//! the fixed graph `G_f`.
//!
//! Failure modes are modelled after the paper's §4.6.3 analysis:
//! * *append-only*: the model concatenates the ground graph after the
//!   pseudo-graph without editing (their dominant observed error);
//! * *over-trust*: the model keeps its own contradicted triple;
//! * *missed edit*: a supported correction is not applied.

use crate::behavior::util::{
    focus_labels, intent_relations, labels_eq, pred_matches_rel, pred_sim, question_key,
};
use crate::graphs::{GroundEntity, GroundGraph};
use crate::memory::ParametricMemory;
use kgstore::hash::{mix2, stable_str_hash};
use kgstore::StrTriple;
use worldgen::Question;

/// The verification edit itself. Returns the fixed graph `G_f`.
pub fn verify_graph(
    mem: &ParametricMemory<'_>,
    q: &Question,
    pseudo: &[StrTriple],
    ground: &GroundGraph,
) -> Vec<StrTriple> {
    verify_graph_sampled(mem, q, pseudo, ground, 0)
}

/// Temperature-sampled variant: `sample > 0` re-rolls the behavioural
/// draws, so several verification passes can be majority-voted (the
/// paper's future-work "additional Pseudo-Graph Verification module").
/// `sample == 0` is byte-identical to [`verify_graph`].
pub fn verify_graph_sampled(
    mem: &ParametricMemory<'_>,
    q: &Question,
    pseudo: &[StrTriple],
    ground: &GroundGraph,
    sample: u32,
) -> Vec<StrTriple> {
    let qkey = if sample == 0 {
        question_key(q)
    } else {
        mix2(question_key(q), 0x5A00 + sample as u64)
    };
    let profile = mem.profile();

    // Failure mode 1: append-only (no editing at all).
    let append_only_rate = (1.0 - profile.verify_fidelity) * 0.45;
    if mem.draw_event(qkey, 0xA0) < append_only_rate {
        let mut out = pseudo.to_vec();
        out.extend(ground.all_triples());
        return dedup(out);
    }

    let rels = intent_relations(q);
    let functional: Vec<bool> = rels.iter().map(|r| r.spec().max_objects == 1).collect();
    let is_functional_pred = |p: &str| {
        rels.iter()
            .zip(&functional)
            .any(|(r, f)| *f && pred_matches_rel(p, *r))
    };

    let mut out: Vec<StrTriple> = Vec::with_capacity(pseudo.len() + ground.triple_count());
    // Substitutions to propagate along chains: believed object replaced
    // by KG object ⇒ downstream subjects must follow.
    let mut subs: Vec<(String, String)> = Vec::new();

    for t in pseudo {
        let mut t = t.clone();
        if let Some((_, new)) = subs.iter().find(|(old, _)| labels_eq(old, &t.s)) {
            t.s = new.clone();
        }
        let tkey = mix2(qkey, stable_str_hash(&format!("{t}")));
        let evidence = evidence_set(ground, &t, &rels);
        if evidence.is_empty() {
            // No comparable evidence. If the claim's subject is itself
            // grounded (its complete triples are visible) and the
            // relation is one the question asks about, the absence IS
            // the evidence: the claim is redundant content and gets
            // deleted (modulo self-bias / missed edits). Otherwise the
            // claim stands — robustness to retrieval gaps.
            let subject_grounded = ground.entities.iter().any(|ge| entity_matches(ge, &t.s));
            let rel_known = rels.iter().any(|r| pred_matches_rel(&t.p, *r));
            if subject_grounded && rel_known {
                // Two distinct failure draws with the same surface
                // outcome (claim kept): self-bias and a missed edit.
                let kept_by_bias = mem.draw_event(tkey, 0xA6) < profile.verify_overtrust;
                let missed_edit = mem.draw_event(tkey, 0xA7) >= profile.verify_fidelity;
                if kept_by_bias || missed_edit {
                    out.push(t);
                }
                // else deleted
            } else {
                out.push(t);
            }
            continue;
        }
        if let Some(confirmed) = evidence.iter().find(|ev| labels_eq(&ev.o, &t.o)) {
            // Confirmed: adopt the KG's verbalisation.
            out.push((*confirmed).clone());
            continue;
        }
        // The subject's complete relevant triples are visible and none
        // of them supports this claim.
        if mem.draw_event(tkey, 0xA1) < profile.verify_overtrust {
            out.push(t); // self-bias: keep own claim anyway
        } else if mem.draw_event(tkey, 0xA2) < profile.verify_fidelity {
            if is_functional_pred(&t.p) {
                // Functional: replace the wrong object with the KG's.
                let ev = evidence[0];
                subs.push((t.o.clone(), ev.o.clone()));
                out.push(ev.clone());
            }
            // Multi-valued: delete the redundant member (the true
            // members enter via the addition pass below).
        } else {
            out.push(t); // missed the edit
        }
    }

    // Additions: import question-relevant triples of focus entities
    // (this is where verification "increases breadth" on open-ended
    // questions — the KG contributes complete member lists).
    let focus = focus_labels(mem.world(), q);
    for ge in &ground.entities {
        let on_focus = focus.iter().any(|f| labels_eq(f, &ge.label));
        for gt in &ge.triples {
            let relevant = if on_focus {
                rels.iter().any(|r| pred_matches_rel(&gt.p, *r))
            } else {
                // Non-focus entities contribute when they are *subjects
                // pointing at* a focus object (who-lists) …
                focus.iter().any(|f| labels_eq(f, &gt.o))
                    && rels.iter().any(|r| pred_matches_rel(&gt.p, *r))
            };
            if !relevant {
                continue;
            }
            let akey = mix2(qkey, stable_str_hash(&format!("add{gt}")));
            if mem.draw_event(akey, 0xA3) < profile.verify_fidelity {
                out.push(gt.clone());
            }
        }
    }

    dedup(out)
}

/// All ground evidence comparable to a pseudo-triple: triples of an
/// entity whose label matches the pseudo subject and whose predicate is
/// semantically the same relation, best predicate similarity first.
///
/// Two predicates count as "the same relation" either by direct token
/// overlap, or by both expressing one of the question's relations (the
/// reader's bridge between schema verbalisations: `CITIZEN_OF` and
/// "country of citizenship" share no tokens but obviously both answer a
/// nationality question).
fn evidence_set<'g>(
    ground: &'g GroundGraph,
    t: &StrTriple,
    rels: &[worldgen::RelId],
) -> Vec<&'g StrTriple> {
    let mut found: Vec<(&'g StrTriple, f64)> = Vec::new();
    for ge in &ground.entities {
        if !entity_matches(ge, &t.s) {
            continue;
        }
        for gt in &ge.triples {
            let mut sim = pred_sim(&gt.p, &t.p);
            if sim < 0.30 {
                let bridged = rels
                    .iter()
                    .any(|&r| pred_matches_rel(&gt.p, r) && pred_matches_rel(&t.p, r));
                if bridged {
                    sim = 0.30;
                } else {
                    continue;
                }
            }
            found.push((gt, sim));
        }
    }
    found.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    found.into_iter().map(|(gt, _)| gt).collect()
}

fn entity_matches(ge: &GroundEntity, label: &str) -> bool {
    labels_eq(&ge.label, label)
}

fn dedup(triples: Vec<StrTriple>) -> Vec<StrTriple> {
    let mut seen = std::collections::HashSet::new();
    triples
        .into_iter()
        .filter(|t| seen.insert((t.s.to_lowercase(), t.p.to_lowercase(), t.o.to_lowercase())))
        .collect()
}

/// Render a fixed graph as the model's textual completion
/// (`<s> <p> <o>` per line, the Figure-4 output format).
pub fn render_fixed(triples: &[StrTriple]) -> String {
    let mut out = String::with_capacity(triples.len() * 32);
    for t in triples {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Parse the model's fixed-graph completion back into triples (the
/// pipeline-side inverse of [`render_fixed`]). Lines that are not
/// `<a> <b> <c>` shaped are skipped, as when cleaning real LLM output.
pub fn parse_triple_lines(text: &str) -> Vec<StrTriple> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('<') || !line.ends_with('>') {
            continue;
        }
        let parts: Vec<&str> = line[1..line.len() - 1].split("> <").collect();
        if parts.len() == 3 {
            out.push(StrTriple::new(parts[0], parts[1], parts[2]));
        }
    }
    out
}

/// Majority-vote over `samples` verification passes: a triple survives
/// if it appears in more than half of the sampled fixed graphs. Order
/// follows first appearance in the first pass that contains each triple.
pub fn verify_graph_consistent(
    mem: &ParametricMemory<'_>,
    q: &Question,
    pseudo: &[StrTriple],
    ground: &GroundGraph,
    samples: u32,
) -> Vec<StrTriple> {
    let samples = samples.max(1);
    if samples == 1 {
        return verify_graph(mem, q, pseudo, ground);
    }
    let runs: Vec<Vec<StrTriple>> = (0..samples)
        .map(|i| verify_graph_sampled(mem, q, pseudo, ground, i))
        .collect();
    let norm = |t: &StrTriple| (t.s.to_lowercase(), t.p.to_lowercase(), t.o.to_lowercase());
    let mut counts: std::collections::HashMap<_, u32> = std::collections::HashMap::new();
    for run in &runs {
        let mut seen = std::collections::HashSet::new();
        for t in run {
            if seen.insert(norm(t)) {
                *counts.entry(norm(t)).or_default() += 1;
            }
        }
    }
    let need = samples / 2 + 1;
    let mut out = Vec::new();
    let mut emitted = std::collections::HashSet::new();
    for run in &runs {
        for t in run {
            let key = norm(t);
            if counts.get(&key).copied().unwrap_or(0) >= need && emitted.insert(key) {
                out.push(t.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::GroundEntity;
    use crate::profile::ModelProfile;
    use worldgen::datasets::simpleq;
    use worldgen::{generate, World, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    fn mem_with(world: &World, fidelity: f64, overtrust: f64) -> ParametricMemory<'_> {
        let mut p = ModelProfile::gpt4_sim();
        p.verify_fidelity = fidelity;
        p.verify_overtrust = overtrust;
        ParametricMemory::new(world, p)
    }

    fn any_question(world: &World) -> worldgen::Question {
        simpleq::generate(world, 1, 7).questions.pop().unwrap()
    }

    fn ground_for(q: &worldgen::Question, world: &World) -> (GroundGraph, String, String, String) {
        // Build a tiny synthetic ground graph matching the question's
        // seed and relation, with a distinct "true" object.
        let worldgen::Intent::Chain { seed, path } = &q.intent else {
            unreachable!()
        };
        let s = world.label(*seed).to_string();
        let p = path[0].spec().wikidata.to_string();
        let o = "KG Truth City".to_string();
        let g = GroundGraph {
            entities: vec![GroundEntity {
                label: s.clone(),
                description: "test".into(),
                score: 0.9,
                triples: vec![StrTriple::new(s.clone(), p.clone(), o.clone())],
            }],
        };
        (g, s, p, o)
    }

    #[test]
    fn contradicted_functional_fact_is_corrected() {
        let w = world();
        let mem = mem_with(&w, 1.0, 0.0);
        let q = any_question(&w);
        let (ground, s, _p, o) = ground_for(&q, &w);
        let worldgen::Intent::Chain { path, .. } = &q.intent else {
            unreachable!()
        };
        let pseudo = vec![StrTriple::new(
            s.clone(),
            path[0].spec().cypher,
            "Wrong City",
        )];
        let fixed = verify_graph(&mem, &q, &pseudo, &ground);
        assert!(
            fixed.iter().any(|t| t.o == o),
            "correction missing: {fixed:?}"
        );
        assert!(
            !fixed.iter().any(|t| t.o == "Wrong City"),
            "wrong fact kept: {fixed:?}"
        );
    }

    #[test]
    fn confirmed_fact_is_kept() {
        let w = world();
        let mem = mem_with(&w, 1.0, 0.0);
        let q = any_question(&w);
        let (ground, s, _p, o) = ground_for(&q, &w);
        let worldgen::Intent::Chain { path, .. } = &q.intent else {
            unreachable!()
        };
        let pseudo = vec![StrTriple::new(s, path[0].spec().cypher, o.clone())];
        let fixed = verify_graph(&mem, &q, &pseudo, &ground);
        assert!(fixed.iter().any(|t| t.o == o));
        assert_eq!(fixed.len(), 1, "{fixed:?}");
    }

    #[test]
    fn overtrust_keeps_wrong_fact() {
        let w = world();
        let mem = mem_with(&w, 1.0, 1.0);
        let q = any_question(&w);
        let (ground, s, _p, _o) = ground_for(&q, &w);
        let worldgen::Intent::Chain { path, .. } = &q.intent else {
            unreachable!()
        };
        let pseudo = vec![StrTriple::new(s, path[0].spec().cypher, "Wrong City")];
        let fixed = verify_graph(&mem, &q, &pseudo, &ground);
        assert!(fixed.iter().any(|t| t.o == "Wrong City"));
    }

    #[test]
    fn unsupported_claims_survive() {
        let w = world();
        let mem = mem_with(&w, 1.0, 0.0);
        let q = any_question(&w);
        let ground = GroundGraph::default();
        let pseudo = vec![StrTriple::new("Nobody", "KNOWS", "Anything")];
        let fixed = verify_graph(&mem, &q, &pseudo, &ground);
        assert_eq!(fixed, pseudo);
    }

    #[test]
    fn append_only_failure_concatenates() {
        let w = world();
        let mut p = ModelProfile::gpt35_sim();
        p.verify_fidelity = 0.0; // forces append-only rate 0.45 — find a question that draws it
        let mem = ParametricMemory::new(&w, p);
        let ds = simpleq::generate(&w, 40, 8);
        let ground = GroundGraph {
            entities: vec![GroundEntity {
                label: "Some Entity".into(),
                description: String::new(),
                score: 0.8,
                triples: vec![StrTriple::new("Some Entity", "marker relation", "Marker")],
            }],
        };
        let pseudo = vec![StrTriple::new("A", "R", "B")];
        let appended = ds.questions.iter().any(|q| {
            let fixed = verify_graph(&mem, q, &pseudo, &ground);
            fixed.iter().any(|t| t.o == "Marker") && fixed.iter().any(|t| t.o == "B")
        });
        assert!(
            appended,
            "append-only mode should trigger for some question"
        );
    }

    #[test]
    fn sample_zero_matches_unsampled() {
        let w = world();
        let mem = mem_with(&w, 0.9, 0.1);
        let q = any_question(&w);
        let (ground, s, _p, _o) = ground_for(&q, &w);
        let worldgen::Intent::Chain { path, .. } = &q.intent else {
            unreachable!()
        };
        let pseudo = vec![StrTriple::new(s, path[0].spec().cypher, "Wrong City")];
        assert_eq!(
            verify_graph(&mem, &q, &pseudo, &ground),
            verify_graph_sampled(&mem, &q, &pseudo, &ground, 0)
        );
    }

    #[test]
    fn consistent_verification_majority_votes_out_flaky_edits() {
        let w = world();
        // Mid fidelity: single passes sometimes miss the correction;
        // majority voting over 5 passes stabilises it.
        let mem = mem_with(&w, 0.6, 0.0);
        let q = any_question(&w);
        let (ground, s, _p, o) = ground_for(&q, &w);
        let worldgen::Intent::Chain { path, .. } = &q.intent else {
            unreachable!()
        };
        let pseudo = vec![StrTriple::new(s, path[0].spec().cypher, "Wrong City")];
        let voted = verify_graph_consistent(&mem, &q, &pseudo, &ground, 5);
        // The corrected triple appears in the majority of passes with
        // p=0.6 per pass, so voting should carry it (with this seed).
        assert!(
            voted.iter().any(|t| t.o == o) || voted.iter().any(|t| t.o == "Wrong City"),
            "voted graph must contain a decision: {voted:?}"
        );
        // Single-sample shortcut equals verify_graph.
        assert_eq!(
            verify_graph_consistent(&mem, &q, &pseudo, &ground, 1),
            verify_graph(&mem, &q, &pseudo, &ground)
        );
    }

    #[test]
    fn render_parse_roundtrip() {
        let triples = vec![
            StrTriple::new("Andes", "covers", "Peru"),
            StrTriple::new("Lake X", "area", "82000"),
        ];
        let text = render_fixed(&triples);
        assert_eq!(parse_triple_lines(&text), triples);
        // Garbage lines are skipped.
        assert!(parse_triple_lines("not a triple\n<a> <b>\n").is_empty());
    }
}
