//! Shared graph types exchanged between the pipeline and the LLM:
//! the pseudo-graph is plain triples; the ground graph groups retrieved
//! KG triples by (scored) candidate entity, ordered so higher-confidence
//! entities sit closer to the pseudo-graph in the verification prompt —
//! exactly the layout the paper prescribes in §3.2.2.

use kgstore::StrTriple;
use serde::{Deserialize, Serialize};

/// One candidate entity surviving the pruning step, with its retrieved
/// triples (verbalised: labels + humanised predicates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundEntity {
    /// The entity's label.
    pub label: String,
    /// Its description (disambiguation context shown to the LLM).
    pub description: String,
    /// Entity confidence score: mean cosine similarity of its triples
    /// (the paper's pruning score; threshold 0.7).
    pub score: f32,
    /// Verbalised triples with this entity as subject.
    pub triples: Vec<StrTriple>,
}

/// The ground graph `G_g`: pruned candidate entities, highest score
/// first.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundGraph {
    /// Candidate entities, sorted by descending score.
    pub entities: Vec<GroundEntity>,
}

impl GroundGraph {
    /// Total triples across entities.
    pub fn triple_count(&self) -> usize {
        self.entities.iter().map(|e| e.triples.len()).sum()
    }

    /// Whether nothing survived pruning.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Flatten to `(label, triples)` sections for prompt rendering.
    pub fn sections(&self) -> Vec<(String, Vec<StrTriple>)> {
        self.entities
            .iter()
            .map(|e| {
                (
                    format!("{} — {} (score {:.2})", e.label, e.description, e.score),
                    e.triples.clone(),
                )
            })
            .collect()
    }

    /// All triples, flattened in entity order.
    pub fn all_triples(&self) -> Vec<StrTriple> {
        self.entities
            .iter()
            .flat_map(|e| e.triples.iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundGraph {
        GroundGraph {
            entities: vec![
                GroundEntity {
                    label: "Yao Ming".into(),
                    description: "basketball player".into(),
                    score: 0.93,
                    triples: vec![StrTriple::new("Yao Ming", "place of birth", "Shanghai")],
                },
                GroundEntity {
                    label: "Shanghai".into(),
                    description: "city".into(),
                    score: 0.78,
                    triples: vec![
                        StrTriple::new("Shanghai", "country", "China"),
                        StrTriple::new("Shanghai", "instance of", "city"),
                    ],
                },
            ],
        }
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.triple_count(), 3);
        assert!(!g.is_empty());
        assert!(GroundGraph::default().is_empty());
    }

    #[test]
    fn sections_preserve_order_and_annotate() {
        let g = sample();
        let s = g.sections();
        assert_eq!(s.len(), 2);
        assert!(s[0].0.starts_with("Yao Ming"));
        assert!(s[0].0.contains("0.93"));
    }

    #[test]
    fn all_triples_flatten_in_order() {
        let g = sample();
        let t = g.all_triples();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].o, "Shanghai");
    }
}
