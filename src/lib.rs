//! # pmkg — Pseudo- and Multisource-Knowledge-Graph enhancement of LLMs
//!
//! A from-scratch Rust reproduction of *Enhancing Large Language Models
//! with Pseudo- and Multisource-Knowledge Graphs for Open-ended Question
//! Answering* (ICDE 2025): the full Pseudo-Graph Generation + Atomic
//! Knowledge Verification pipeline plus every substrate it needs —
//! a triple store with multi-source schema rendering, a Cypher-subset
//! engine, a deterministic semantic encoder with exact top-k retrieval,
//! a calibrated simulated LLM, synthetic KG sources and QA benchmarks,
//! metrics, and a reproduction harness for every table and figure in the
//! paper's evaluation.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`kgstore`] — triples, property graph, KG sources, subgraph extraction;
//! * [`cypher`] — Cypher lexer/parser/executor + pseudo-graph decode;
//! * [`semvec`] — hashing sentence encoder + vector index;
//! * [`simllm`] — the simulated LLM (profiles, memory, behaviours, prompts);
//! * [`worldgen`] — seeded world, KG derivation, dataset generators;
//! * [`evalkit`] — Hit@1, ROUGE-L, error taxonomy, report tables;
//! * [`pipeline`] (= `pgg_core`) — the paper's method, baselines, runner.
//!
//! ## Quickstart
//!
//! ```
//! use pmkg::prelude::*;
//! use std::sync::Arc;
//!
//! // A small world keeps the doctest fast.
//! let world = Arc::new(worldgen::generate(&worldgen::WorldConfig {
//!     scale: 0.3,
//!     ..Default::default()
//! }));
//! let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
//! let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
//! let dataset = worldgen::datasets::simpleq::generate(&world, 5, 7);
//!
//! let embedder = Embedder::paper();
//! let cfg = PipelineConfig::default();
//! let result = pipeline::run(
//!     &PseudoGraphPipeline::full(),
//!     &llm,
//!     Some(&source),
//!     None,
//!     &embedder,
//!     &cfg,
//!     &dataset,
//!     1,
//! ).unwrap();
//! assert_eq!(result.records.len(), 5);
//! ```

pub use cypher;
pub use evalkit;
pub use kgstore;
pub use pgg_core as pipeline;
pub use semvec;
pub use simllm;
pub use worldgen;

/// The names most programs need.
pub mod prelude {
    pub use cypher::{decode_llm_output, parse as parse_cypher};
    pub use evalkit::{is_hit, rouge_l_multi, Table};
    pub use kgstore::{KgSource, SchemaStyle, StrTriple, TripleStore};
    pub use pgg_core as pipeline;
    pub use pgg_core::{
        BaseIndex, Cot, Io, Method, PipelineConfig, PseudoGraphPipeline, QaContext, Qsm,
        SelfConsistency,
    };
    pub use semvec::Embedder;
    pub use simllm::{LanguageModel, LlmTask, ModelProfile, SimLlm};
    pub use worldgen::{Dataset, DatasetKind, Question, World};
}
