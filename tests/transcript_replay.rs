//! The transcript seam: the pipeline's behaviour is fully determined by
//! the completions it receives — replaying a recorded transcript through
//! `ScriptedLlm` reproduces the run exactly, which is both a test of the
//! string-only LLM interface and the mechanism for pinning regression
//! fixtures from real API transcripts.

use pmkg::prelude::*;
use simllm::{ScriptedLlm, TranscriptLlm};
use std::sync::Arc;

#[test]
fn replaying_a_transcript_reproduces_the_run() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let ds = worldgen::datasets::simpleq::generate(&world, 15, 55);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let base = BaseIndex::for_questions(
        &source,
        &emb,
        &cfg,
        ds.questions.iter().map(|q| q.text.as_str()),
    );

    // Record a single-threaded run (ordering matters for replay).
    let recorder = TranscriptLlm::new(SimLlm::new(world.clone(), ModelProfile::gpt35_sim()));
    let original = pipeline::run(
        &PseudoGraphPipeline::full(),
        &recorder,
        Some(&source),
        Some(&base),
        &emb,
        &cfg,
        &ds,
        1,
    )
    .unwrap();
    let transcript = recorder.transcript();
    assert!(
        transcript.len() >= ds.len() * 2,
        "pipeline makes ≥2 calls per question"
    );

    // Replay: the scripted model knows nothing about the world, yet the
    // run is identical because the pipeline only consumes completions.
    let replayer = ScriptedLlm::from_transcript(&transcript);
    let replayed = pipeline::run(
        &PseudoGraphPipeline::full(),
        &replayer,
        Some(&source),
        Some(&base),
        &emb,
        &cfg,
        &ds,
        1,
    )
    .unwrap();
    assert_eq!(
        replayer.overruns(),
        0,
        "replay must consume exactly the script"
    );
    assert_eq!(original.hit.hits, replayed.hit.hits);
    for (a, b) in original.records.iter().zip(&replayed.records) {
        assert_eq!(a.answer, b.answer, "replayed answer diverged on {}", a.qid);
        assert_eq!(a.trace.pseudo_triples, b.trace.pseudo_triples);
        assert_eq!(a.trace.fixed_triples, b.trace.fixed_triples);
    }
}

#[test]
fn transcript_prompts_contain_the_paper_prompt_markers() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let ds = worldgen::datasets::simpleq::generate(&world, 5, 77);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let recorder = TranscriptLlm::new(SimLlm::new(world.clone(), ModelProfile::gpt35_sim()));
    pipeline::run(
        &PseudoGraphPipeline::full(),
        &recorder,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        1,
    )
    .unwrap();
    let t = recorder.transcript();
    // Figure-3 prompt markers on pseudo-graph calls.
    assert!(t
        .iter()
        .filter(|e| e.kind == "pseudo-graph")
        .all(|e| e.prompt.contains("{Knowledge Graph}") && e.prompt.contains("[Task]")));
    // Figure-5 markers on answer calls.
    assert!(t
        .iter()
        .filter(|e| e.kind == "answer")
        .all(|e| e.prompt.contains("[graph]") && e.prompt.ends_with("[answer]: ")));
    // Verification prompts embed ground-graph sections when present.
    for e in t.iter().filter(|e| e.kind == "verify") {
        assert!(e.prompt.contains("{graph to fix}"));
    }
}
