//! Cross-crate integration: the full pipeline from world generation to
//! scored answers, exercising kgstore + cypher + semvec + simllm +
//! worldgen + evalkit + pgg-core together.

use pmkg::prelude::*;
use std::sync::Arc;

fn fixture() -> (Arc<worldgen::World>, kgstore::KgSource, SimLlm) {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    (world, source, llm)
}

#[test]
fn full_pipeline_beats_cot_on_simple_questions() {
    let (world, source, llm) = fixture();
    let ds = worldgen::datasets::simpleq::generate(&world, 120, 11);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let base = BaseIndex::for_questions(
        &source,
        &emb,
        &cfg,
        ds.questions.iter().map(|q| q.text.as_str()),
    );
    let cot = pipeline::run(&Cot, &llm, None, None, &emb, &cfg, &ds, 0).unwrap();
    let ours = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        Some(&base),
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    assert!(
        ours.score() > cot.score() + 5.0,
        "KG enhancement must clearly beat CoT: ours {:.1} vs cot {:.1}",
        ours.score(),
        cot.score()
    );
}

#[test]
fn full_pipeline_is_deterministic_end_to_end() {
    let (world, source, llm) = fixture();
    let ds = worldgen::datasets::qald::generate(&world, 25, 5);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let run1 = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        4,
    )
    .unwrap();
    let run2 = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        2,
    )
    .unwrap();
    assert_eq!(run1.hit.hits, run2.hit.hits);
    for (a, b) in run1.records.iter().zip(&run2.records) {
        assert_eq!(a.answer, b.answer, "answers must not depend on threading");
    }
}

#[test]
fn open_ended_verification_adds_breadth() {
    let (world, source, llm) = fixture();
    let ds = worldgen::datasets::nature::generate(&world, 50, 303);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let base = BaseIndex::for_questions(
        &source,
        &emb,
        &cfg,
        ds.questions.iter().map(|q| q.text.as_str()),
    );
    let pseudo_only = pipeline::run(
        &PseudoGraphPipeline::pseudo_only(),
        &llm,
        Some(&source),
        Some(&base),
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    let full = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        Some(&base),
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    assert!(
        full.score() > pseudo_only.score() + 5.0,
        "verification must add breadth on open-ended questions: {:.1} vs {:.1}",
        full.score(),
        pseudo_only.score()
    );
}

#[test]
fn gpt4_profile_outscores_gpt35_on_qald() {
    let (world, source, _) = fixture();
    let llm35 = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    let llm4 = SimLlm::new(world.clone(), ModelProfile::gpt4_sim());
    let ds = worldgen::datasets::qald::generate(&world, 150, 21);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let s35 = pipeline::run(&Cot, &llm35, Some(&source), None, &emb, &cfg, &ds, 0).unwrap();
    let s4 = pipeline::run(&Cot, &llm4, Some(&source), None, &emb, &cfg, &ds, 0).unwrap();
    assert!(
        s4.score() > s35.score(),
        "gpt-4 profile must beat gpt-3.5: {:.1} vs {:.1}",
        s4.score(),
        s35.score()
    );
}

#[test]
fn pipeline_records_carry_complete_traces() {
    let (world, source, llm) = fixture();
    let ds = worldgen::datasets::simpleq::generate(&world, 20, 31);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let res = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    for r in &res.records {
        assert!(r.trace.pseudo_raw.is_some(), "raw LLM output recorded");
        assert!(
            r.trace.cypher_error.is_some() || !r.trace.pseudo_triples.is_empty(),
            "either a decode error or triples"
        );
        assert!(r.hit.is_some(), "Hit@1 dataset must be hit-scored");
        assert!(r.rouge.is_none());
    }
    // Records serialize (they feed the error-analysis harness).
    let json = serde_json::to_string(&res.records[0]).unwrap();
    assert!(json.contains("qid"));
}

#[test]
fn token_telemetry_accumulates_across_methods() {
    let (world, source, llm) = fixture();
    let ds = worldgen::datasets::simpleq::generate(&world, 5, 41);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let before = llm.tokens_processed();
    pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        1,
    )
    .unwrap();
    let mid = llm.tokens_processed();
    assert!(mid > before);
    pipeline::run(&Io, &llm, None, None, &emb, &cfg, &ds, 1).unwrap();
    assert!(llm.tokens_processed() > mid);
}
