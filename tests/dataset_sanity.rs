//! Dataset-level sanity: the benchmarks must be *solvable in principle*
//! from their grounding KG source, and their metadata must be coherent —
//! otherwise measured method differences would be artifacts.

use pmkg::prelude::*;
use std::sync::Arc;
use worldgen::{Gold, Intent};

fn world() -> Arc<worldgen::World> {
    Arc::new(worldgen::generate(&worldgen::WorldConfig::default()))
}

/// Walk a chain intent directly in a KG source (oracle retrieval),
/// returning the final label if every hop is present.
fn kg_answer(
    _world: &worldgen::World,
    source: &kgstore::KgSource,
    seed: worldgen::EntityId,
    path: &[worldgen::RelId],
) -> Option<String> {
    let mut cur = worldgen::entity_sid(source.style, seed);
    for rel in path {
        let pred = match source.style {
            SchemaStyle::WikidataLike => rel.spec().wikidata,
            SchemaStyle::FreebaseLike => rel.spec().freebase,
        };
        let s = source.store.atoms().get(&cur)?;
        let p = source.store.atoms().get(pred)?;
        let next = source.store.by_sp(s, p).next()?;
        cur = source.store.resolve(next.o).to_string();
        // Mediated hop: follow the statement node through.
        if cur.starts_with('S') && source.label_of(next.o).starts_with("statement") {
            let sm = source.store.atoms().get(&cur)?;
            let pm = source.store.atoms().get("statement is about")?;
            let through = source.store.by_sp(sm, pm).next()?;
            cur = source.store.resolve(through.o).to_string();
        }
    }
    let atom = source.store.atoms().get(&cur)?;
    Some(source.label_of(atom).to_string())
}

#[test]
fn simplequestions_mostly_answerable_from_freebase() {
    let w = world();
    let fb = worldgen::derive(&w, &worldgen::SourceConfig::freebase());
    let ds = worldgen::datasets::simpleq::generate(&w, 300, 101);
    let mut answerable = 0;
    for q in &ds.questions {
        let Intent::Chain { seed, path } = &q.intent else {
            unreachable!()
        };
        let Gold::Accepted(accepted) = &q.gold else {
            unreachable!()
        };
        if let Some(ans) = kg_answer(&w, &fb, *seed, path) {
            if accepted.contains(&ans) {
                answerable += 1;
            }
        }
    }
    // Coverage is 0.94 per fact; oracle answerability must be close.
    assert!(
        answerable >= 250,
        "freebase should answer ≥~85% of SimpleQuestions: {answerable}/300"
    );
}

#[test]
fn qald_chains_are_oracle_answerable_from_wikidata() {
    let w = world();
    let wd = worldgen::derive(&w, &worldgen::SourceConfig::wikidata());
    let ds = worldgen::datasets::qald::generate(&w, 200, 202);
    let mut total = 0;
    let mut answerable = 0;
    for q in &ds.questions {
        let Intent::Chain { seed, path } = &q.intent else {
            continue;
        };
        let Gold::Accepted(accepted) = &q.gold else {
            continue;
        };
        total += 1;
        if let Some(ans) = kg_answer(&w, &wd, *seed, path) {
            if accepted.contains(&ans) {
                answerable += 1;
            }
        }
    }
    assert!(total > 100);
    // Coverage 0.87 per fact, chains need every hop: expect ≥ 55%.
    assert!(
        answerable * 100 >= total * 55,
        "wikidata oracle answerability too low: {answerable}/{total}"
    );
}

#[test]
fn nature_recent_questions_unanswerable_from_freebase() {
    let w = world();
    let fb = worldgen::derive(&w, &worldgen::SourceConfig::freebase());
    let ds = worldgen::datasets::nature::generate(&w, 50, 303);
    for q in &ds.questions {
        if let Intent::List { seed, rel } = &q.intent {
            if rel.spec().recent {
                // The frozen source must not contain the relation at all.
                let pred = fb.store.atoms().get(rel.spec().freebase);
                assert!(pred.is_none(), "recent relation leaked for {}", q.text);
                let _ = seed;
            }
        }
    }
}

#[test]
fn datasets_have_disjoint_id_spaces_and_kinds() {
    let w = world();
    let sq = worldgen::datasets::simpleq::generate(&w, 50, 1);
    let qald = worldgen::datasets::qald::generate(&w, 50, 2);
    let nq = worldgen::datasets::nature::generate(&w, 50, 3);
    assert!(sq.questions.iter().all(|q| q.id.starts_with("sq-")));
    assert!(qald.questions.iter().all(|q| q.id.starts_with("qald-")));
    assert!(nq.questions.iter().all(|q| q.id.starts_with("nq-")));
    assert_eq!(sq.kind.name(), "SimpleQuestions");
    assert_eq!(qald.kind.name(), "QALD-10");
    assert_eq!(nq.kind.name(), "Nature Questions");
}

#[test]
fn paper_sizes_are_generatable() {
    let w = world();
    let sq = worldgen::datasets::simpleq::generate(&w, 1000, 101);
    assert_eq!(sq.len(), 1000, "the GPT-3.5 SimpleQuestions budget");
    let qald = worldgen::datasets::qald::generate(&w, 394, 202);
    assert_eq!(qald.len(), 394, "the QALD-10 English test size");
}
