//! The paper's generalization claim as an executable property: the
//! pipeline is schema-agnostic — no component inspects source-specific
//! ids or property names, and the same code path handles both sources.

use pmkg::prelude::*;
use std::sync::Arc;

#[test]
fn same_questions_work_on_both_schemas() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let wikidata = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let freebase = worldgen::derive(&world, &worldgen::SourceConfig::freebase());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    let ds = worldgen::datasets::simpleq::generate(&world, 80, 3);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();

    let cot = pipeline::run(&Cot, &llm, None, None, &emb, &cfg, &ds, 0).unwrap();
    for src in [&freebase, &wikidata] {
        let res = pipeline::run(
            &PseudoGraphPipeline::full(),
            &llm,
            Some(src),
            None,
            &emb,
            &cfg,
            &ds,
            0,
        )
        .unwrap();
        assert!(
            res.score() > cot.score(),
            "KG enhancement must improve over CoT on {}: {:.1} vs {:.1}",
            src.name,
            res.score(),
            cot.score()
        );
    }
}

#[test]
fn recent_knowledge_only_answerable_from_the_current_source() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let wikidata = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let freebase = worldgen::derive(&world, &worldgen::SourceConfig::freebase());
    // The frozen FB2M-like source must not contain any recent relation.
    for rel in worldgen::all_rel_ids() {
        let spec = rel.spec();
        if spec.recent {
            assert!(
                freebase.store.atoms().get(spec.freebase).is_none(),
                "{} leaked into the frozen source",
                spec.name
            );
            // Whereas the timely source covers it.
            assert!(
                wikidata.store.atoms().get(spec.wikidata).is_some(),
                "{} missing from the timely source",
                spec.name
            );
        }
    }
}

#[test]
fn mediated_relations_are_two_hops_on_wikidata_only() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let wikidata = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let freebase = worldgen::derive(&world, &worldgen::SourceConfig::freebase());
    let mediated = worldgen::rel_by_name("ceo").unwrap().spec();

    // Wikidata: ceo edges end at statement nodes.
    let p = wikidata
        .store
        .atoms()
        .get(mediated.wikidata)
        .expect("ceo facts");
    for t in wikidata.store.by_predicate(p) {
        assert!(wikidata.store.resolve(t.o).starts_with('S'));
    }
    // Freebase: direct entity-to-entity edges.
    let p = freebase
        .store
        .atoms()
        .get(mediated.freebase)
        .expect("ceo facts");
    for t in freebase.store.by_predicate(p) {
        assert!(freebase.store.resolve(t.o).starts_with("/m/"));
    }
}

#[test]
fn pipeline_never_sees_world_ids() {
    // The ground graphs handed to the verifier must contain only labels,
    // never Q-ids / mids — the "no linking" property.
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    let ds = worldgen::datasets::simpleq::generate(&world, 30, 17);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let res = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    for r in &res.records {
        for (label, _) in &r.trace.ground_entities {
            let is_qid = label.len() > 1
                && label.starts_with('Q')
                && label[1..].chars().all(|c| c.is_ascii_digit());
            assert!(!is_qid, "opaque id leaked into the prompt layer: {label}");
        }
        for t in &r.trace.fixed_triples {
            assert!(!t.s.starts_with("/m/"), "mid leaked: {t}");
        }
    }
}
