//! The paper's Figures 6–8 error cases as executable scenarios:
//! * Fig. 6 — wrong pruning of the right entity (k too small / the
//!   namesake wins);
//! * Fig. 7 — threshold too high, every entity pruned;
//! * Fig. 8 — LLM mis-verification (over-trust keeps a wrong triple);
//!
//! plus the §4.6.1 spurious-MATCH failure.

use pmkg::prelude::*;
use std::sync::Arc;

#[test]
fn figure7_threshold_prunes_everything() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let llm = SimLlm::new(world.clone(), ModelProfile::gpt35_sim());
    let ds = worldgen::datasets::simpleq::generate(&world, 15, 77);
    let emb = Embedder::paper();
    let cfg = PipelineConfig {
        entity_threshold: 0.99,
        ..Default::default()
    }; // absurd threshold

    let res = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    // Everything pruned → no ground entities anywhere, yet the pipeline
    // still answers every question (robustness).
    for r in &res.records {
        assert!(
            r.trace.ground_entities.is_empty(),
            "nothing must survive 0.99"
        );
        assert!(!r.answer.is_empty());
    }
}

#[test]
fn figure8_overtrust_keeps_wrong_facts() {
    use simllm::behavior::verify::verify_graph;
    use simllm::{GroundEntity, GroundGraph};

    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let ds = worldgen::datasets::simpleq::generate(&world, 1, 99);
    let q = &ds.questions[0];
    let worldgen::Intent::Chain { seed, path } = &q.intent else {
        unreachable!()
    };
    let subject = world.label(*seed).to_string();

    let ground = GroundGraph {
        entities: vec![GroundEntity {
            label: subject.clone(),
            description: "test".into(),
            score: 0.9,
            triples: vec![kgstore::StrTriple::new(
                subject.clone(),
                path[0].spec().wikidata,
                "KG Correct Answer",
            )],
        }],
    };
    let pseudo = vec![kgstore::StrTriple::new(
        subject,
        path[0].spec().cypher,
        "Hallucinated Answer",
    )];

    // Fully self-biased model: never accepts corrections.
    let mut profile = ModelProfile::gpt4_sim();
    profile.verify_overtrust = 1.0;
    let llm = SimLlm::new(world.clone(), profile);
    let fixed = verify_graph(&llm.memory(), q, &pseudo, &ground);
    assert!(
        fixed.iter().any(|t| t.o == "Hallucinated Answer"),
        "over-trust must keep the wrong fact: {fixed:?}"
    );

    // Faithful model: correction applied.
    let mut profile = ModelProfile::gpt4_sim();
    profile.verify_overtrust = 0.0;
    profile.verify_fidelity = 1.0;
    let llm = SimLlm::new(world.clone(), profile);
    let fixed = verify_graph(&llm.memory(), q, &pseudo, &ground);
    assert!(
        fixed.iter().any(|t| t.o == "KG Correct Answer"),
        "faithful verification must adopt the KG fact: {fixed:?}"
    );
    assert!(!fixed.iter().any(|t| t.o == "Hallucinated Answer"));
}

#[test]
fn figure6_ambiguous_labels_compete_in_pruning() {
    // Build a source where the namesake is *better connected* than the
    // true referent, so pruning step 1 (triple counts) picks the wrong
    // entity — the Figure-6 failure.
    let mut source = kgstore::KgSource::new("adversarial", SchemaStyle::WikidataLike);
    source.add_entity(
        "Q1",
        kgstore::EntityMeta {
            label: "Madam Satan".into(),
            aliases: vec![],
            description: "1930 film".into(),
            popularity: 0.4,
        },
    );
    source.add_entity(
        "Q2",
        kgstore::EntityMeta {
            label: "Madam Satan".into(),
            aliases: vec![],
            description: "nightclub".into(),
            popularity: 0.6,
        },
    );
    source.add_fact("Q1", "genre", "film noir");
    for (p, o) in [
        ("located in", "Philadelphia"),
        ("instance of", "nightclub"),
        ("capacity", "500"),
        ("music genre", "jazz"),
        ("description", "nightclub"),
    ] {
        source.add_fact("Q2", p, o);
    }

    let emb = Embedder::default(); // no jitter: deterministic count logic
    let cfg = PipelineConfig::default();
    let base =
        pipeline::BaseIndex::for_question(&source, &emb, &cfg, "What is the genre of Madam Satan?");
    let pseudo = vec![kgstore::StrTriple::new("Madam Satan", "HAS_GENRE", "jazz")];
    let (ground, _) = pipeline::ground_graph(&source, &base, &emb, &cfg, &pseudo);
    // k = 1 → exactly one entity survives; the well-connected nightclub
    // crowds out the film even though the film has the `genre` fact.
    assert_eq!(ground.entities.len(), 1);
    assert_eq!(ground.entities[0].description, "nightclub");
}

#[test]
fn spurious_match_is_counted_and_survived() {
    let world = Arc::new(worldgen::generate(&worldgen::WorldConfig::default()));
    let source = worldgen::derive(&world, &worldgen::SourceConfig::wikidata());
    let mut profile = ModelProfile::gpt35_sim();
    profile.cypher_match_rate = 1.0;
    let llm = SimLlm::new(world.clone(), profile);
    let ds = worldgen::datasets::simpleq::generate(&world, 8, 13);
    let emb = Embedder::paper();
    let cfg = PipelineConfig::default();
    let res = pipeline::run(
        &PseudoGraphPipeline::full(),
        &llm,
        Some(&source),
        None,
        &emb,
        &cfg,
        &ds,
        0,
    )
    .unwrap();
    for r in &res.records {
        assert_eq!(r.trace.cypher_error.as_deref(), Some("spurious-match"));
        assert!(!r.answer.is_empty(), "pipeline must degrade gracefully");
    }
}
