#!/bin/bash
set -x
cargo run --release -q -p bench --bin table1 > results/table1.txt 2>&1
cargo run --release -q -p bench --bin table2 > results/table2.txt 2>&1
cargo run --release -q -p bench --bin table3 > results/table3.txt 2>&1
cargo run --release -q -p bench --bin table4 > results/table4.txt 2>&1
cargo run --release -q -p bench --bin table5 > results/table5.txt 2>&1
cargo run --release -q -p bench --bin error_analysis > results/error_analysis.txt 2>&1
cargo run --release -q -p bench --bin threshold_sweep > results/threshold_sweep.txt 2>&1
cargo run --release -q -p bench --bin figure1 > results/figure1.txt 2>&1
echo ALL_DONE
cargo run --release -q -p bench --bin ablation_extensions > results/ablation_extensions.txt 2>&1; cargo run --release -q -p bench --bin stats > results/stats.txt 2>&1
